/**
 * @file
 * Cross-module property tests: randomized ODF round-trips, channel
 * delivery-order invariants, the cache model checked against a
 * straightforward reference implementation, and serialization
 * robustness against truncation.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "common/rng.hh"
#include "core/call.hh"
#include "core/executive.hh"
#include "core/offcode.hh"
#include "core/providers.hh"
#include "dev/nic.hh"
#include "hw/cache.hh"
#include "hw/machine.hh"
#include "net/network.hh"
#include "odf/odf.hh"

#include "exec/sim_executor.hh"

namespace hydra {
namespace {

// ------------------------------------------------ ODF round-trip fuzz

odf::OdfDocument
randomOdf(Rng &rng)
{
    odf::OdfDocument doc;
    doc.bindname = "fuzz.Offcode" + std::to_string(rng.uniformInt(0, 999));
    doc.guid = Guid(rng.next() | 1);

    const auto interfaces = rng.uniformInt(0, 3);
    for (int i = 0; i < interfaces; ++i) {
        odf::InterfaceSpec iface;
        iface.name = "I" + std::to_string(i);
        iface.guid = Guid(rng.next() | 1);
        const auto methods = rng.uniformInt(0, 4);
        for (int m = 0; m < methods; ++m)
            iface.methods.push_back("method" + std::to_string(m));
        if (rng.chance(0.3))
            iface.includePath = "/offcodes/iface" + std::to_string(i) +
                                ".wsdl";
        doc.interfaces.push_back(std::move(iface));
    }

    const auto imports = rng.uniformInt(0, 4);
    for (int i = 0; i < imports; ++i) {
        odf::ImportSpec import;
        import.bindname = "peer.P" + std::to_string(i);
        import.guid = Guid(rng.next() | 1);
        import.constraint = static_cast<odf::ConstraintType>(
            rng.uniformInt(0, 3));
        import.priority = static_cast<int>(rng.uniformInt(-3, 7));
        if (rng.chance(0.5))
            import.file = "/offcodes/p" + std::to_string(i) + ".odf";
        doc.imports.push_back(std::move(import));
    }

    const auto targets = rng.uniformInt(0, 2);
    for (int t = 0; t < targets; ++t) {
        dev::DeviceClassSpec spec;
        spec.id = static_cast<std::uint32_t>(rng.uniformInt(1, 0xffff));
        spec.name = "Class" + std::to_string(t);
        if (rng.chance(0.5))
            spec.bus = "pci";
        if (rng.chance(0.3))
            spec.mac = "ethernet";
        if (rng.chance(0.3))
            spec.vendor = "ACME";
        doc.targets.push_back(std::move(spec));
    }
    doc.hostFallback = doc.targets.empty() ? true : rng.chance(0.7);
    doc.requiredMemoryBytes =
        static_cast<std::size_t>(rng.uniformInt(0, 1 << 20));
    const auto caps = rng.uniformInt(0, 3);
    for (int c = 0; c < caps; ++c)
        doc.requiredCapabilities.push_back("cap" + std::to_string(c));
    doc.busPrice = rng.uniform(0.0, 2.0);
    return doc;
}

class OdfRoundTripTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OdfRoundTripTest, ToXmlParsePreservesEverything)
{
    Rng rng(GetParam() * 2654435761ull);
    const odf::OdfDocument original = randomOdf(rng);
    auto reparsed = odf::OdfDocument::parse(original.toXml());
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().describe();
    const odf::OdfDocument &out = reparsed.value();

    EXPECT_EQ(out.bindname, original.bindname);
    EXPECT_EQ(out.guid, original.guid);
    EXPECT_EQ(out.hostFallback, original.hostFallback);
    EXPECT_EQ(out.requiredMemoryBytes, original.requiredMemoryBytes);
    EXPECT_EQ(out.requiredCapabilities, original.requiredCapabilities);
    EXPECT_NEAR(out.busPrice, original.busPrice, 1e-6);

    ASSERT_EQ(out.interfaces.size(), original.interfaces.size());
    for (std::size_t i = 0; i < out.interfaces.size(); ++i) {
        EXPECT_EQ(out.interfaces[i].name, original.interfaces[i].name);
        EXPECT_EQ(out.interfaces[i].guid, original.interfaces[i].guid);
        EXPECT_EQ(out.interfaces[i].methods,
                  original.interfaces[i].methods);
        EXPECT_EQ(out.interfaces[i].includePath,
                  original.interfaces[i].includePath);
    }
    ASSERT_EQ(out.imports.size(), original.imports.size());
    for (std::size_t i = 0; i < out.imports.size(); ++i) {
        EXPECT_EQ(out.imports[i].bindname, original.imports[i].bindname);
        EXPECT_EQ(out.imports[i].guid, original.imports[i].guid);
        EXPECT_EQ(out.imports[i].constraint,
                  original.imports[i].constraint);
        EXPECT_EQ(out.imports[i].priority, original.imports[i].priority);
        EXPECT_EQ(out.imports[i].file, original.imports[i].file);
    }
    ASSERT_EQ(out.targets.size(), original.targets.size());
    for (std::size_t i = 0; i < out.targets.size(); ++i) {
        EXPECT_EQ(out.targets[i].id, original.targets[i].id);
        EXPECT_EQ(out.targets[i].name, original.targets[i].name);
        EXPECT_EQ(out.targets[i].bus, original.targets[i].bus);
        EXPECT_EQ(out.targets[i].mac, original.targets[i].mac);
        EXPECT_EQ(out.targets[i].vendor, original.targets[i].vendor);
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, OdfRoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 31));

// ------------------------------------------- Call truncation robustness

TEST(CallRobustnessTest, EveryTruncationFailsCleanly)
{
    core::Call call;
    call.targetOffcode = Guid(42);
    call.interfaceGuid = Guid(43);
    call.method = "SomeMethod";
    call.arguments = Bytes(100, 9);
    call.callId = 7;
    const Bytes wire = call.serialize().toBytes();

    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        const Bytes truncated(wire.begin(),
                              wire.begin() +
                                  static_cast<std::ptrdiff_t>(cut));
        auto decoded = core::Call::deserialize(truncated);
        EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
    }
    EXPECT_TRUE(core::Call::deserialize(wire).ok());
}

TEST(CallRobustnessTest, RandomGarbageNeverDecodesAsValidReturn)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes garbage(static_cast<std::size_t>(rng.uniformInt(0, 64)));
        for (auto &byte : garbage)
            byte = static_cast<std::uint8_t>(rng.next());
        // Must never crash; may only succeed if the kind byte and
        // all length fields happen to be consistent.
        auto ret = core::CallReturn::deserialize(garbage);
        if (ret.ok()) {
            EXPECT_EQ(garbage[0],
                      static_cast<std::uint8_t>(
                          core::MessageKind::Return));
        }
    }
}

// --------------------------------------------- channel order invariant

/** Offcode recording the sequence numbers it receives. */
class OrderSink : public core::Offcode
{
  public:
    OrderSink() : Offcode("prop.OrderSink") {}

    void
    onData(const Payload &payload, core::ChannelHandle) override
    {
        ByteReader reader(payload.data(), payload.size());
        sequence.push_back(reader.readU64().valueOr(0));
    }

    std::vector<std::uint64_t> sequence;
};

TEST(ChannelOrderTest, ReliableRingPreservesOrderUnderBackpressure)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    net::Network net(sim, net::NetworkConfig{});
    dev::ProgrammableNic nic(sim, machine.bus(), net, net.addNode("n"));
    core::HostSite host(machine);
    core::DeviceSite device(machine, nic);

    core::DmaRingChannelProvider provider(sim, false);
    core::ChannelConfig config;
    config.reliable = true;
    config.ringDepth = 3; // tiny ring: constant backpressure
    auto channel = provider.create(config, host);

    OrderSink sink;
    core::OffcodeContext ctx;
    ctx.site = &device;
    sink.doInitialize(ctx);
    sink.doStart();
    ASSERT_TRUE(channel->connectOffcode(sink).ok());

    Rng rng(5);
    std::uint64_t next = 0;
    // Bursty producer: random batches with random gaps.
    for (int burst = 0; burst < 50; ++burst) {
        const auto batch = rng.uniformInt(1, 12);
        sim.schedule(sim::microseconds(
                         static_cast<std::uint64_t>(burst * 120)),
                     [&, batch]() {
                         for (int i = 0; i < batch; ++i) {
                             Bytes msg;
                             ByteWriter writer(msg);
                             writer.writeU64(next++);
                             channel->write(core::encodeData(msg));
                         }
                     });
    }
    sim.runToCompletion();

    ASSERT_EQ(channel->stats().messagesDropped, 0u);
    ASSERT_FALSE(sink.sequence.empty());
    for (std::size_t i = 1; i < sink.sequence.size(); ++i)
        ASSERT_EQ(sink.sequence[i], sink.sequence[i - 1] + 1)
            << "reordering at index " << i;
    EXPECT_EQ(sink.sequence.size(), static_cast<std::size_t>(next));
}

// ----------------------------------------- cache model vs reference

/** Straightforward reference: per-set list, MRU at front. */
class ReferenceCache
{
  public:
    ReferenceCache(std::size_t capacity, std::size_t line,
                   std::size_t ways)
        : line_(line), ways_(ways), sets_(capacity / (line * ways))
    {
        table_.resize(sets_);
    }

    bool
    access(hw::Addr addr)
    {
        const std::uint64_t tag = addr / line_;
        auto &set = table_[tag % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.push_front(tag);
                return false; // hit
            }
        }
        set.push_front(tag);
        if (set.size() > ways_)
            set.pop_back();
        return true; // miss
    }

  private:
    std::size_t line_, ways_, sets_;
    std::vector<std::list<std::uint64_t>> table_;
};

class CachePropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CachePropertyTest, MatchesReferenceOnRandomTraces)
{
    Rng rng(GetParam() * 31337);
    hw::CacheModel cache(8192, 64, 4);
    ReferenceCache reference(8192, 64, 4);

    std::uint64_t expectedMisses = 0;
    const int accesses = 5000;
    for (int i = 0; i < accesses; ++i) {
        // Mix of hot (reused) and cold (streaming) addresses, line
        // aligned so both models see single-line accesses.
        const hw::Addr addr =
            rng.chance(0.6)
                ? static_cast<hw::Addr>(rng.uniformInt(0, 63)) * 64
                : static_cast<hw::Addr>(rng.uniformInt(0, 1 << 16)) * 64;
        if (reference.access(addr))
            ++expectedMisses;
        cache.access(addr, 1, rng.chance(0.5));
    }
    EXPECT_EQ(cache.totals().accesses,
              static_cast<std::uint64_t>(accesses));
    EXPECT_EQ(cache.totals().misses, expectedMisses);
}

INSTANTIATE_TEST_SUITE_P(Traces, CachePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

} // namespace
} // namespace hydra
