/**
 * @file
 * Sampling profiler: attribution rules (running / recent / parked /
 * idle), folded-stack export, and a threaded stress run that hammers
 * ActivityScope publication from worker threads while the main thread
 * samples — the TSAN job runs this via the `threaded` label.
 */

#include <gtest/gtest.h>

#include <string>

#include "exec/threaded_executor.hh"
#include "obs/profiler.hh"

using namespace hydra;
using namespace hydra::obs;

namespace {

/** Fresh profiler state per test; slots/labels stay interned. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Profiler::instance().disable();
        Profiler::instance().clear();
    }
    void
    TearDown() override
    {
        Profiler::instance().disable();
        Profiler::instance().clear();
    }
};

} // namespace

TEST_F(ProfilerTest, DisabledScopeIsNoop)
{
    SiteActivitySlot *slot =
        Profiler::instance().slotFor("prof.disabled");
    const ActivityLabel *label =
        Profiler::instance().intern("oc", "call");
    {
        ActivityScope scope(slot, label);
        EXPECT_EQ(slot->current.load(), nullptr);
    }
    EXPECT_EQ(slot->lastEndNs.load(), 0u);
}

TEST_F(ProfilerTest, SamplesRunningScope)
{
    Profiler &profiler = Profiler::instance();
    profiler.enable(100);
    SiteActivitySlot *slot = profiler.slotFor("prof.running");
    const ActivityLabel *label = profiler.intern("tivo.X", "data");

    ActivityScope scope(slot, label);
    profiler.sample(1000);
    scope.finish(1000);

    const std::string folded = profiler.foldedStacks();
    EXPECT_NE(folded.find("prof.running;tivo.X;data 1"),
              std::string::npos)
        << folded;
    EXPECT_EQ(profiler.samplesTaken(), 1u);
}

TEST_F(ProfilerTest, RecentWorkAttributesWithinOneInterval)
{
    Profiler &profiler = Profiler::instance();
    profiler.enable(100);
    SiteActivitySlot *slot = profiler.slotFor("prof.recent");
    const ActivityLabel *label = profiler.intern("tivo.Y", "call");

    {
        ActivityScope scope(slot, label);
        scope.finish(1000);
    }
    // 1050 is within one interval of the scope's end: still tivo.Y.
    profiler.sample(1050);
    // 1101 is past the window: the site reads idle.
    profiler.sample(1101);

    const std::string folded = profiler.foldedStacks();
    EXPECT_NE(folded.find("prof.recent;tivo.Y;call 1"),
              std::string::npos)
        << folded;
    EXPECT_NE(folded.find("prof.recent;idle 1"), std::string::npos)
        << folded;
}

TEST_F(ProfilerTest, ParkedBeatsIdle)
{
    Profiler &profiler = Profiler::instance();
    profiler.enable(100);
    SiteActivitySlot *slot = profiler.slotFor("prof.parked");
    slot->parked.store(true);
    profiler.sample(500);
    slot->parked.store(false);

    EXPECT_NE(profiler.foldedStacks().find("prof.parked;parked 1"),
              std::string::npos);
}

TEST_F(ProfilerTest, AbandonedScopeLeavesLastEndUntouched)
{
    Profiler &profiler = Profiler::instance();
    profiler.enable(100);
    SiteActivitySlot *slot = profiler.slotFor("prof.abandoned");
    const ActivityLabel *label = profiler.intern("tivo.Z", "mgmt");
    {
        // Error path: the destructor runs without finish(endNs).
        ActivityScope scope(slot, label);
    }
    EXPECT_EQ(slot->lastEndNs.load(), 0u);
    EXPECT_EQ(slot->current.load(), nullptr);
    // The recency rule needs lastEndNs, so an abandoned scope never
    // claims future samples.
    profiler.sample(10);
    EXPECT_NE(profiler.foldedStacks().find("prof.abandoned;idle 1"),
              std::string::npos);
}

TEST_F(ProfilerTest, FoldedStacksAreSortedAndStable)
{
    Profiler &profiler = Profiler::instance();
    profiler.enable(50);
    SiteActivitySlot *b = profiler.slotFor("prof.b");
    SiteActivitySlot *a = profiler.slotFor("prof.a");
    const ActivityLabel *label = profiler.intern("oc", "call");

    {
        ActivityScope scope(b, label);
        profiler.sample(100);
        scope.finish(100);
    }
    {
        ActivityScope scope(a, label);
        profiler.sample(200);
        scope.finish(200);
    }

    const std::string first = profiler.foldedStacks();
    const std::string second = profiler.foldedStacks();
    EXPECT_EQ(first, second);
    // std::map ordering: prof.a's line precedes prof.b's.
    EXPECT_LT(first.find("prof.a;"), first.find("prof.b;"));
}

TEST_F(ProfilerTest, InternReturnsStableIdentity)
{
    Profiler &profiler = Profiler::instance();
    const ActivityLabel *one = profiler.intern("same", "call");
    const ActivityLabel *two = profiler.intern("same", "call");
    EXPECT_EQ(one, two);
    EXPECT_EQ(profiler.slotFor("same-site"),
              profiler.slotFor("same-site"));
}

/**
 * Thread-safety stress: four workers publish scopes through their
 * interned slots while the coordinator samples concurrently. Run
 * under TSAN via `ctest -L threaded`; the assertion here is only that
 * every sample saw every site.
 */
TEST_F(ProfilerTest, ThreadedPublicationStress)
{
    Profiler &profiler = Profiler::instance();
    profiler.enable(1000);

    exec::ThreadedExecutor engine;
    constexpr int kSites = 4;
    constexpr int kRounds = 200;
    std::vector<exec::SiteId> sites;
    std::vector<SiteActivitySlot *> slots;
    for (int s = 0; s < kSites; ++s) {
        const std::string name = "stress-" + std::to_string(s);
        sites.push_back(engine.addSite(name));
        slots.push_back(profiler.slotFor(name));
    }
    const ActivityLabel *label = profiler.intern("stress.oc", "data");

    for (int round = 0; round < kRounds; ++round) {
        for (int s = 0; s < kSites; ++s) {
            SiteActivitySlot *slot = slots[s];
            engine.post(sites[s], [slot, label, round]() {
                ActivityScope scope(slot, label);
                scope.finish(static_cast<std::uint64_t>(round) + 1);
            });
        }
        profiler.sample(static_cast<std::uint64_t>(round) + 1);
    }
    engine.drain();
    profiler.sample(kRounds + 1000);

    EXPECT_EQ(profiler.samplesTaken(),
              static_cast<std::uint64_t>(kRounds) + 1);
    const std::string folded = profiler.foldedStacks();
    for (int s = 0; s < kSites; ++s)
        EXPECT_NE(folded.find("stress-" + std::to_string(s) + ";"),
                  std::string::npos)
            << folded;
}
