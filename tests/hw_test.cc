/**
 * @file
 * Unit tests for the hardware substrate: cache model, CPU cycle
 * accounting, bus/DMA, and the OS cost model (tick quantization,
 * copies, background load).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "hw/bus.hh"
#include "hw/cache.hh"
#include "hw/cpu.hh"
#include "hw/machine.hh"
#include "hw/os.hh"
#include "exec/sim_executor.hh"

namespace hydra::hw {
namespace {

// ---------------------------------------------------------------- Cache

TEST(CacheTest, ColdMissesThenHits)
{
    CacheModel cache(1024, 64, 2); // 8 sets x 2 ways
    cache.access(0, 64, false);
    EXPECT_EQ(cache.totals().misses, 1u);
    cache.access(0, 64, false);
    EXPECT_EQ(cache.totals().misses, 1u);
    EXPECT_EQ(cache.totals().accesses, 2u);
}

TEST(CacheTest, MultiLineAccessCountsEachLine)
{
    CacheModel cache(4096, 64, 4);
    cache.access(0, 256, true); // 4 lines
    EXPECT_EQ(cache.totals().accesses, 4u);
    EXPECT_EQ(cache.totals().misses, 4u);
}

TEST(CacheTest, UnalignedAccessSpansLines)
{
    CacheModel cache(4096, 64, 4);
    cache.access(60, 8, false); // straddles two lines
    EXPECT_EQ(cache.totals().accesses, 2u);
}

TEST(CacheTest, LruEviction)
{
    // One set (capacity 128 = 64 * 2 ways * 1 set).
    CacheModel cache(128, 64, 2);
    // Lines mapping to set 0: addresses 0, 128, 256 (all even lines).
    cache.access(0, 1, false);   // miss, fills way 0
    cache.access(128, 1, false); // miss, fills way 1
    cache.access(0, 1, false);   // hit: 0 now MRU
    cache.access(256, 1, false); // miss: evicts 128 (LRU)
    cache.access(0, 1, false);   // still a hit
    EXPECT_EQ(cache.totals().misses, 3u);
    cache.access(128, 1, false); // miss: was evicted
    EXPECT_EQ(cache.totals().misses, 4u);
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes)
{
    CacheModel cache(256 * 1024, 64, 8);
    // Stream 1 MB twice: everything misses both times.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 1024 * 1024; a += 64)
            cache.access(a, 64, false);
    EXPECT_DOUBLE_EQ(cache.totals().missRate(), 1.0);
}

TEST(CacheTest, WorkingSetSmallerThanCacheHitsOnReuse)
{
    CacheModel cache(256 * 1024, 64, 8);
    for (int pass = 0; pass < 10; ++pass)
        for (Addr a = 0; a < 64 * 1024; a += 64)
            cache.access(a, 64, false);
    // First pass misses (1024 lines), the other 9 passes hit.
    EXPECT_NEAR(cache.totals().missRate(), 0.1, 0.001);
}

TEST(CacheTest, SnoopInvalidateForcesRefetch)
{
    CacheModel cache(4096, 64, 4);
    cache.access(0, 64, false);
    cache.snoopInvalidate(0, 64);
    cache.access(0, 64, false);
    EXPECT_EQ(cache.totals().misses, 2u);
}

TEST(CacheTest, WindowStatsResetIndependently)
{
    CacheModel cache(4096, 64, 4);
    cache.access(0, 64, false);
    cache.beginWindow();
    cache.access(64, 64, false);
    EXPECT_EQ(cache.windowStats().accesses, 1u);
    EXPECT_EQ(cache.totals().accesses, 2u);
}

TEST(CacheTest, FlushDropsEverything)
{
    CacheModel cache(4096, 64, 4);
    cache.access(0, 64, false);
    cache.flush();
    cache.access(0, 64, false);
    EXPECT_EQ(cache.totals().misses, 2u);
}

// ---------------------------------------------------------------- Cpu

TEST(CpuTest, CycleAccounting)
{
    exec::SimExecutor sim;
    Cpu cpu(sim, "cpu0", 2.0); // 2 GHz -> 0.5 ns per cycle
    const sim::SimTime done = cpu.runCycles(1000);
    EXPECT_EQ(done, 500u);
    EXPECT_EQ(cpu.busyTime(), 500u);
}

TEST(CpuTest, WorkSerializes)
{
    exec::SimExecutor sim;
    Cpu cpu(sim, "cpu0", 1.0);
    const sim::SimTime first = cpu.runCycles(100);
    const sim::SimTime second = cpu.runCycles(100);
    EXPECT_EQ(first, 100u);
    EXPECT_EQ(second, 200u); // queued behind the first
    EXPECT_EQ(cpu.busyTime(), 200u);
}

TEST(CpuTest, MeterMeasuresWindowUtilization)
{
    exec::SimExecutor sim;
    Cpu cpu(sim, "cpu0", 1.0);
    CpuMeter meter(cpu);
    meter.beginWindow(0);

    // 250 ns busy within a 1000 ns window.
    cpu.runFor(250);
    sim.schedule(1000, []() {});
    sim.runToCompletion();
    EXPECT_DOUBLE_EQ(meter.sample(1000), 0.25);

    // Next window: idle.
    EXPECT_DOUBLE_EQ(meter.sample(2000), 0.0);
}

// ---------------------------------------------------------------- Bus

TEST(BusTest, TransferLatencyAndStats)
{
    exec::SimExecutor sim;
    Bus bus(sim, "pci", 8.0, 100);
    bool done = false;
    sim::SimTime completed = 0;
    bus.transfer(8000, [&]() {
        done = true;
        completed = sim.now();
    });
    sim.runToCompletion();
    EXPECT_TRUE(done);
    // 8000 B = 64000 bits at 8 Gbps = 8000 ns, plus 100 ns setup.
    EXPECT_EQ(completed, 8100u);
    EXPECT_EQ(bus.stats().transactions, 1u);
    EXPECT_EQ(bus.stats().bytesMoved, 8000u);
}

TEST(BusTest, TransfersSerializeUnderContention)
{
    exec::SimExecutor sim;
    Bus bus(sim, "pci", 8.0, 0);
    std::vector<sim::SimTime> completions;
    for (int i = 0; i < 3; ++i)
        bus.transfer(1000, [&]() { completions.push_back(sim.now()); });
    sim.runToCompletion();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0], 1000u);
    EXPECT_EQ(completions[1], 2000u);
    EXPECT_EQ(completions[2], 3000u);
}

TEST(BusTest, DmaAddsDescriptorCost)
{
    exec::SimExecutor sim;
    Bus bus(sim, "pci", 8.0, 0);
    DmaEngine dma(sim, bus, 500);
    sim::SimTime completed = 0;
    dma.start(1000, [&]() { completed = sim.now(); });
    sim.runToCompletion();
    EXPECT_EQ(completed, 1500u); // 500 descriptor + 1000 payload
    EXPECT_EQ(dma.transfersStarted(), 1u);
}

// ---------------------------------------------------------------- Os

class OsTest : public ::testing::Test
{
  protected:
    OsTest()
        : cpu_(sim_, "host", 2.4), l2_(256 * 1024, 64, 8),
          os_(sim_, cpu_, l2_, OsConfig{}, 42)
    {
    }

    exec::SimExecutor sim_;
    Cpu cpu_;
    CacheModel l2_;
    OsKernel os_;
};

TEST_F(OsTest, RegionsDoNotOverlap)
{
    const Addr a = os_.allocRegion(1000);
    const Addr b = os_.allocRegion(1000);
    EXPECT_GE(b, a + 1000);
}

TEST_F(OsTest, SyscallChargesCpu)
{
    const sim::SimTime before = cpu_.busyTime();
    os_.syscall();
    EXPECT_GT(cpu_.busyTime(), before);
}

TEST_F(OsTest, CopyTouchesCacheAndCpu)
{
    const Addr src = os_.allocRegion(4096);
    const Addr dst = os_.allocRegion(4096);
    const auto accessesBefore = l2_.totals().accesses;
    const auto busyBefore = cpu_.busyTime();
    os_.copyBytes(src, dst, 1024);
    // 16 lines read + 16 lines written.
    EXPECT_EQ(l2_.totals().accesses - accessesBefore, 32u);
    EXPECT_GT(cpu_.busyTime(), busyBefore);
}

TEST_F(OsTest, DmaDeliveredInvalidatesLines)
{
    const Addr buf = os_.allocRegion(4096);
    os_.copyBytes(buf, buf + 2048, 1024); // warm the cache
    const auto missesBefore = l2_.totals().misses;
    os_.dmaDelivered(buf, 1024);
    l2_.access(buf, 1024, false);
    EXPECT_EQ(l2_.totals().misses - missesBefore, 16u);
}

TEST_F(OsTest, WakeAfterLandsOnJiffyAfterExpiry)
{
    OsConfig quiet;
    quiet.wakeupNoiseSigma = 0;
    quiet.preemptionProbability = 0.0;
    OsKernel os(sim_, cpu_, l2_, quiet, 1);

    // From t=0, a 5 ms sleep expires in jiffy 5, fires at jiffy 6.
    const sim::SimTime wake = os.wakeAfter(sim::milliseconds(5));
    EXPECT_EQ(wake, sim::milliseconds(6));
}

TEST_F(OsTest, WakeAfterMidJiffyStillFloorsPlusOne)
{
    OsConfig quiet;
    quiet.wakeupNoiseSigma = 0;
    quiet.preemptionProbability = 0.0;
    OsKernel os(sim_, cpu_, l2_, quiet, 1);

    sim_.schedule(sim::microseconds(300), []() {});
    sim_.runToCompletion(); // now = 0.3 ms
    // Expiry at 5.3 ms -> jiffy 5 -> fires at 6 ms.
    EXPECT_EQ(os.wakeAfter(sim::milliseconds(5)), sim::milliseconds(6));
}

TEST_F(OsTest, IoWakeQuantizesToNextTick)
{
    OsConfig quiet;
    quiet.wakeupNoiseSigma = 0;
    quiet.preemptionProbability = 0.0;
    OsKernel os(sim_, cpu_, l2_, quiet, 1);

    sim_.schedule(sim::microseconds(2700), []() {});
    sim_.runToCompletion(); // now = 2.7 ms
    EXPECT_EQ(os.ioWake(), sim::milliseconds(3));
}

TEST_F(OsTest, WakeupNoiseIsNonNegative)
{
    for (int i = 0; i < 200; ++i) {
        const sim::SimTime wake = os_.wakeAfter(sim::milliseconds(5));
        EXPECT_GE(wake, sim::milliseconds(6));
        // Bounded: tick noise + possible preemption tick + tail.
        EXPECT_LT(wake, sim::milliseconds(9));
    }
}

TEST_F(OsTest, BackgroundLoadProducesIdleBaseline)
{
    os_.startBackgroundLoad();
    CpuMeter meter(cpu_);
    // Skip the first second as warmup.
    sim_.runUntil(sim::seconds(1));
    meter.beginWindow(sim_.now());
    sim_.runUntil(sim::seconds(6));
    const double util = meter.sample(sim_.now());
    // The paper's idle baseline: 2.86 % (+/- modeled noise).
    EXPECT_NEAR(util, 0.0286, 0.004);
}

TEST(MachineTest, ComposesSubsystems)
{
    exec::SimExecutor sim;
    MachineConfig config;
    config.name = "testbox";
    Machine machine(sim, config);
    EXPECT_EQ(machine.name(), "testbox");
    EXPECT_DOUBLE_EQ(machine.cpu().clockGhz(), 2.4);
    EXPECT_EQ(machine.l2().numSets(), 256u * 1024 / (64 * 8));
    machine.os().syscall();
    EXPECT_GT(machine.cpu().busyTime(), 0u);
}

} // namespace
} // namespace hydra::hw
