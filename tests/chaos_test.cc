/**
 * @file
 * Chaos engine + firmware OS hardening tests (DESIGN.md §15): spec
 * parsing, seeded-draw determinism, NIC-reset-mid-stream survival
 * with zero message loss on both execution engines, the per-Offcode
 * watchdog killing a wedged instance, and quota enforcement (memory
 * at deploy and at dispatch, CPU budget preemption that defers but
 * never drops).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.hh"
#include "core/runtime.hh"
#include "dev/nic.hh"
#include "exec/sim_executor.hh"
#include "net/network.hh"
#include "obs/metrics.hh"
#include "tivo/harness.hh"

namespace hydra {
namespace {

/**
 * Every test here runs against the process-wide ChaosEngine and
 * metrics registry, so each one starts from a disarmed engine and a
 * zeroed registry and leaves the same behind.
 */
class ChaosFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        chaos::ChaosEngine::instance().disable();
        obs::MetricsRegistry::instance().reset();
    }

    void
    TearDown() override
    {
        chaos::ChaosEngine::instance().disable();
        obs::MetricsRegistry::instance().reset();
    }
};

// -------------------------------------------------------- spec parsing

TEST(ChaosSpecTest, ParsesSeedOnly)
{
    auto spec = chaos::parseChaosSpec("42");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec.value().seed, 42u);
    EXPECT_EQ(spec.value().packetDrop, 0.0);
    EXPECT_TRUE(spec.value().resets.empty());
}

TEST(ChaosSpecTest, ParsesFullSpec)
{
    auto spec = chaos::parseChaosSpec(
        "7:drop=0.01,dup=0.02,corrupt=0.005,slow=0.1,stall=0.01,"
        "poolfail=0.001,ringfull=0.002,slow-ms=3,stall-ms=4,"
        "reset@2000=client-nic/10,reset@5000=server-nic");
    ASSERT_TRUE(spec.ok()) << spec.error().describe();
    const chaos::ChaosSpec &s = spec.value();
    EXPECT_EQ(s.seed, 7u);
    EXPECT_DOUBLE_EQ(s.packetDrop, 0.01);
    EXPECT_DOUBLE_EQ(s.packetDuplicate, 0.02);
    EXPECT_DOUBLE_EQ(s.packetCorrupt, 0.005);
    EXPECT_DOUBLE_EQ(s.workerSlow, 0.1);
    EXPECT_DOUBLE_EQ(s.workerStall, 0.01);
    EXPECT_DOUBLE_EQ(s.poolExhaust, 0.001);
    EXPECT_DOUBLE_EQ(s.ringOverflow, 0.002);
    EXPECT_EQ(s.slowDelay, sim::milliseconds(3));
    EXPECT_EQ(s.stallTime, sim::milliseconds(4));
    ASSERT_EQ(s.resets.size(), 2u);
    EXPECT_EQ(s.resets[0].at, sim::milliseconds(2000));
    EXPECT_EQ(s.resets[0].device, "client-nic");
    EXPECT_EQ(s.resets[0].downtime, sim::milliseconds(10));
    EXPECT_EQ(s.resets[1].device, "server-nic");
    EXPECT_EQ(s.resets[1].downtime, sim::milliseconds(5));
}

TEST(ChaosSpecTest, RejectsMalformedSpecs)
{
    // Probabilities must be numeric and inside [0, 1]; durations
    // positive; keys known; reset targets named.
    for (const char *bad :
         {"", "abc", "-1", "7:drop=-0.1", "7:drop=1.5", "7:drop=abc",
          "7:drop=", "7:bogus=0.5", "7:slow-ms=0", "7:slow-ms=x",
          "7:reset@=nic", "7:reset@100=", "7:reset@abc=nic",
          "7:reset@100=nic/0", "7:reset@100=nic/xyz", "7:drop"}) {
        auto spec = chaos::parseChaosSpec(bad);
        EXPECT_FALSE(spec.ok()) << "accepted: " << bad;
    }
}

// --------------------------------------------------- draw determinism

TEST_F(ChaosFixture, SameSeedReplaysIdenticalDecisions)
{
    chaos::ChaosSpec spec;
    spec.seed = 99;
    spec.packetDrop = 0.3;
    spec.packetCorrupt = 0.2;

    auto &engine = chaos::ChaosEngine::instance();
    auto record = [&]() {
        engine.configure(spec);
        std::vector<bool> decisions;
        for (int i = 0; i < 200; ++i) {
            decisions.push_back(engine.dropPacket(i));
            decisions.push_back(engine.corruptPacket(i));
        }
        return decisions;
    };
    const auto first = record();
    const auto second = record();
    EXPECT_EQ(first, second);

    spec.seed = 100;
    const auto reseeded = record();
    EXPECT_NE(first, reseeded);
}

TEST_F(ChaosFixture, StreamsAreIndependentPerFaultClass)
{
    // Drawing from one class must not perturb another: drop-only
    // decisions are identical whether or not corrupt draws happen
    // in between.
    chaos::ChaosSpec spec;
    spec.seed = 4242;
    spec.packetDrop = 0.5;
    spec.packetCorrupt = 0.5;

    auto &engine = chaos::ChaosEngine::instance();
    engine.configure(spec);
    std::vector<bool> dropsAlone;
    for (int i = 0; i < 100; ++i)
        dropsAlone.push_back(engine.dropPacket(i));

    engine.configure(spec);
    std::vector<bool> dropsInterleaved;
    for (int i = 0; i < 100; ++i) {
        dropsInterleaved.push_back(engine.dropPacket(i));
        (void)engine.corruptPacket(i);
    }
    EXPECT_EQ(dropsAlone, dropsInterleaved);
}

TEST_F(ChaosFixture, DisabledEngineNeverFires)
{
    auto &engine = chaos::ChaosEngine::instance();
    ASSERT_FALSE(engine.enabled());
    const std::uint64_t before = engine.injected();
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(engine.dropPacket(i));
        EXPECT_FALSE(engine.duplicatePacket(i));
        EXPECT_FALSE(engine.corruptPacket(i));
        EXPECT_FALSE(engine.exhaustPool(i));
        EXPECT_FALSE(engine.overflowRing(i));
    }
    EXPECT_EQ(engine.injected(), before);
}

// ------------------------------------- NIC reset survival (tentpole)

/**
 * Stream the offloaded TiVo scenario through a client-NIC reset and
 * require exactly-once delivery: every chunk the server sent arrived
 * despite the device going down mid-stream, and the recovery path
 * (offcode restart + rx replay) actually ran.
 */
void
runResetSurvival(exec::ExecutorKind executorKind)
{
    chaos::ChaosSpec spec;
    spec.seed = 7;
    spec.resets.push_back(
        {sim::milliseconds(3000), "client-nic", sim::milliseconds(5)});
    chaos::ChaosEngine::instance().configure(spec);

    tivo::TestbedConfig config;
    config.server = tivo::ServerKind::Offloaded;
    config.client = tivo::ClientKind::Offloaded;
    config.executor = executorKind;
    config.duration = sim::seconds(10);
    tivo::Testbed testbed(config);
    const tivo::ScenarioResult result = testbed.run();

    ASSERT_TRUE(result.deploymentOk);
    EXPECT_GT(result.chunksSent, 0u);
    EXPECT_GT(result.framesDisplayed, 0u);
    // Zero loss: the reset dropped no client messages.
    EXPECT_EQ(result.packetsReceived, result.chunksSent);

    auto &metrics = obs::MetricsRegistry::instance();
    EXPECT_GE(metrics.counterTotal("dev.resets"), 1u);
    EXPECT_GE(metrics.counterTotal("offcode.restarts"), 1u);
    EXPECT_GE(metrics.counterTotal("chaos.recoveries"), 1u);
    EXPECT_EQ(metrics.counterTotal("nic.reset_rx_dropped"), 0u);
    EXPECT_GE(chaos::ChaosEngine::instance().injected(), 1u);
}

TEST_F(ChaosFixture, NicResetMidStreamLosesNothingSim)
{
    runResetSurvival(exec::ExecutorKind::Sim);
}

TEST_F(ChaosFixture, NicResetMidStreamLosesNothingThreaded)
{
    runResetSurvival(exec::ExecutorKind::Threaded);
}

// ------------------------------------------- firmware OS: watchdog

/** Offcode counting deliveries into shared state that survives the
 * restart swap (the instance is replaced; the counter is not). */
class CountingOffcode : public core::Offcode
{
  public:
    CountingOffcode(std::string bindname, std::shared_ptr<int> hits)
        : Offcode(std::move(bindname)), hits_(std::move(hits))
    {
    }

    void
    onData(const Payload &, core::ChannelHandle) override
    {
        ++*hits_;
    }

  private:
    std::shared_ptr<int> hits_;
};

/** Offcode that burns @p burnNs of site CPU per delivery. */
class BusyOffcode : public core::Offcode
{
  public:
    BusyOffcode(std::string bindname, sim::SimTime burnNs,
                std::shared_ptr<int> hits)
        : Offcode(std::move(bindname)), burnNs_(burnNs),
          hits_(std::move(hits))
    {
    }

    void
    onData(const Payload &, core::ChannelHandle) override
    {
        ++*hits_;
        if (context().site)
            context().site->run(burnNs_);
    }

  private:
    sim::SimTime burnNs_;
    std::shared_ptr<int> hits_;
};

/** Runtime-over-one-NIC fixture mirroring core_runtime_test.cc. */
class FirmwareOsFixture : public ChaosFixture
{
  protected:
    void
    buildRuntime(core::RuntimeConfig config = {})
    {
        machine_ = std::make_unique<hw::Machine>(sim_,
                                                 hw::MachineConfig{});
        net_ = std::make_unique<net::Network>(sim_,
                                              net::NetworkConfig{});
        nicNode_ = net_->addNode("nic");
        nic_ = std::make_unique<dev::ProgrammableNic>(
            sim_, machine_->bus(), *net_, nicNode_);
        runtime_ = std::make_unique<core::Runtime>(*machine_,
                                                   std::move(config));
        ASSERT_TRUE(runtime_->attachDevice(*nic_).ok());
    }

    std::string
    nicOdf(const std::string &bindname)
    {
        return "<offcode><package><bindname>" + bindname +
               "</bindname></package><sw-env></sw-env><targets>"
               "<device-class id=\"0x0001\"/>"
               "<host-fallback/></targets></offcode>";
    }

    /** Deploy @p bindname and return its handle (runs the pipeline). */
    core::OffcodeHandle
    deploy(const std::string &bindname)
    {
        core::OffcodeHandle handle;
        bool done = false;
        runtime_->createOffcode(
            bindname, [&](Result<core::OffcodeHandle> result) {
                ASSERT_TRUE(result.ok()) << result.error().describe();
                handle = result.value();
                done = true;
            });
        sim_.runUntil(sim_.now() + sim::seconds(1));
        EXPECT_TRUE(done);
        return handle;
    }

    /** Channel from the host site to the NIC-resident @p offcode. */
    core::Channel *
    channelTo(core::Offcode &offcode)
    {
        core::ChannelConfig config;
        config.name = "test.chaos";
        config.targetDevice = "nic";
        auto channel = runtime_->executive().createChannel(
            config, *runtime_->siteByName("host"));
        EXPECT_TRUE(channel.ok());
        EXPECT_TRUE(channel.value()->connectOffcode(offcode).ok());
        return channel.value();
    }

    exec::SimExecutor sim_;
    std::unique_ptr<hw::Machine> machine_;
    std::unique_ptr<net::Network> net_;
    net::NodeId nicNode_ = 0;
    std::unique_ptr<dev::ProgrammableNic> nic_;
    std::unique_ptr<core::Runtime> runtime_;
};

TEST_F(FirmwareOsFixture, WatchdogRestartsWedgedOffcodeAndReplays)
{
    core::RuntimeConfig config;
    config.watchdogLimitNs = sim::milliseconds(50);
    config.watchdogPeriodNs = sim::milliseconds(10);
    buildRuntime(std::move(config));

    auto hits = std::make_shared<int>(0);
    runtime_->depot().registerOffcode(nicOdf("test.Wedge"), [hits]() {
        return std::make_unique<CountingOffcode>("test.Wedge", hits);
    });
    core::OffcodeHandle handle = deploy("test.Wedge");
    ASSERT_NE(handle.offcode, nullptr);
    core::Channel *channel = channelTo(*handle.offcode);
    ASSERT_NE(channel, nullptr);

    // Wedge the instance: handlers vanish, traffic queues behind it.
    EXPECT_GT(runtime_->executive().detachOffcode(*handle.offcode), 0u);
    ASSERT_TRUE(channel->write(core::encodeData(Bytes{1, 2, 3})).ok());
    sim_.runUntil(sim_.now() + sim::milliseconds(5));
    EXPECT_EQ(*hits, 0);
    EXPECT_GT(runtime_->executive().queuedFor(*handle.offcode), 0u);

    // The watchdog must notice the stalled backlog, kill the
    // instance, and the rebind must replay the queued message into
    // the successor — preemptive recovery without message loss.
    sim_.runUntil(sim_.now() + sim::milliseconds(500));

    auto &metrics = obs::MetricsRegistry::instance();
    EXPECT_GE(metrics.counterValue("offcode.watchdog_kills",
                                   {{"offcode", "test.Wedge"}}),
              1u);
    EXPECT_GE(metrics.counterValue("offcode.restarts",
                                   {{"offcode", "test.Wedge"}}),
              1u);
    EXPECT_EQ(*hits, 1);

    auto restarted = runtime_->getOffcode("test.Wedge");
    ASSERT_TRUE(restarted.ok());
    EXPECT_NE(restarted.value().offcode, handle.offcode);
    EXPECT_EQ(restarted.value().offcode->state(),
              core::OffcodeState::Started);
}

TEST_F(FirmwareOsFixture, WatchdogDisabledByDefault)
{
    buildRuntime();
    auto hits = std::make_shared<int>(0);
    runtime_->depot().registerOffcode(nicOdf("test.Quiet"), [hits]() {
        return std::make_unique<CountingOffcode>("test.Quiet", hits);
    });
    core::OffcodeHandle handle = deploy("test.Quiet");
    ASSERT_NE(handle.offcode, nullptr);

    // An idle Offcode sits untouched forever with the watchdog off.
    sim_.runUntil(sim_.now() + sim::seconds(5));
    EXPECT_EQ(obs::MetricsRegistry::instance().counterTotal(
                  "offcode.watchdog_kills"),
              0u);
    auto still = runtime_->getOffcode("test.Quiet");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(still.value().offcode, handle.offcode);
}

// --------------------------------------------- firmware OS: quotas

TEST_F(FirmwareOsFixture, MemoryQuotaRejectsOversizedImageAtDeploy)
{
    core::RuntimeConfig config;
    config.quotas["test.Fat"].memoryBytes = 1024; // image is 32 KiB
    buildRuntime(std::move(config));

    runtime_->depot().registerOffcode(nicOdf("test.Fat"), []() {
        return std::make_unique<CountingOffcode>(
            "test.Fat", std::make_shared<int>(0));
    });
    bool failed = false;
    runtime_->createOffcode("test.Fat",
                            [&](Result<core::OffcodeHandle> result) {
                                EXPECT_FALSE(result.ok());
                                failed = true;
                            });
    sim_.runUntil(sim_.now() + sim::seconds(1));
    EXPECT_TRUE(failed);
    EXPECT_GE(obs::MetricsRegistry::instance().counterValue(
                  "offcode.quota_rejections",
                  {{"offcode", "test.Fat"}, {"resource", "memory"}}),
              1u);
}

TEST_F(FirmwareOsFixture, MemoryQuotaRejectsOversizedMessage)
{
    core::RuntimeConfig config;
    // Above the 32 KiB image, below the oversized message.
    config.quotas["test.Lean"].memoryBytes = 40000;
    buildRuntime(std::move(config));

    auto hits = std::make_shared<int>(0);
    runtime_->depot().registerOffcode(nicOdf("test.Lean"), [hits]() {
        return std::make_unique<CountingOffcode>("test.Lean", hits);
    });
    core::OffcodeHandle handle = deploy("test.Lean");
    ASSERT_NE(handle.offcode, nullptr);
    core::Channel *channel = channelTo(*handle.offcode);
    ASSERT_NE(channel, nullptr);

    ASSERT_TRUE(
        channel->write(core::encodeData(Bytes(50000, 0xAB))).ok());
    ASSERT_TRUE(channel->write(core::encodeData(Bytes{1})).ok());
    sim_.runUntil(sim_.now() + sim::milliseconds(10));

    // The oversized message was rejected and counted; the small one
    // went through.
    EXPECT_EQ(*hits, 1);
    EXPECT_GE(obs::MetricsRegistry::instance().counterValue(
                  "offcode.quota_rejections",
                  {{"offcode", "test.Lean"}, {"resource", "memory"}}),
              1u);
}

TEST_F(FirmwareOsFixture, CpuBudgetPreemptsButNeverDrops)
{
    core::RuntimeConfig config;
    config.quotas["test.Busy"].cpuBudgetNs = 100000;       // 0.1 ms
    config.quotas["test.Busy"].slicePeriodNs = sim::milliseconds(1);
    buildRuntime(std::move(config));

    auto hits = std::make_shared<int>(0);
    runtime_->depot().registerOffcode(nicOdf("test.Busy"), [hits]() {
        // Each delivery burns 0.5 ms — 5x the slice budget.
        return std::make_unique<BusyOffcode>(
            "test.Busy", sim::microseconds(500), hits);
    });
    core::OffcodeHandle handle = deploy("test.Busy");
    ASSERT_NE(handle.offcode, nullptr);
    core::Channel *channel = channelTo(*handle.offcode);
    ASSERT_NE(channel, nullptr);

    const int burst = 8;
    for (int i = 0; i < burst; ++i)
        ASSERT_TRUE(channel
                        ->write(core::encodeData(
                            Bytes{static_cast<std::uint8_t>(i)}))
                        .ok());
    sim_.runUntil(sim_.now() + sim::milliseconds(2));
    // Mid-burst the budget has preempted at least one dispatch and
    // not yet delivered the tail.
    EXPECT_GE(obs::MetricsRegistry::instance().counterValue(
                  "offcode.preemptions", {{"offcode", "test.Busy"}}),
              1u);
    EXPECT_LT(*hits, burst);

    // Preemption defers to the next slice; it never discards. Given
    // enough slices the whole burst lands.
    sim_.runUntil(sim_.now() + sim::seconds(1));
    EXPECT_EQ(*hits, burst);
}

} // namespace
} // namespace hydra
