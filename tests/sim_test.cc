/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hh"

namespace hydra::sim {
namespace {

TEST(SimTimeTest, UnitConversions)
{
    EXPECT_EQ(milliseconds(5), 5'000'000u);
    EXPECT_EQ(seconds(1), 1'000'000'000u);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(7)), 7.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(3)), 3.0);
}

TEST(SimTimeTest, CyclesToTimeRoundsUp)
{
    // 1 cycle at 2.4 GHz is 0.41666 ns -> rounds up to 1 ns.
    EXPECT_EQ(cyclesToTime(1, 2.4), 1u);
    // 2400 cycles at 2.4 GHz is exactly 1000 ns.
    EXPECT_EQ(cyclesToTime(2400, 2.4), 1000u);
}

TEST(SimTimeTest, TransferTime)
{
    // 125 bytes at 1 Gbps = 1000 bits / 1e9 bps = 1000 ns.
    EXPECT_EQ(transferTime(125, 1.0), 1000u);
    // Higher bandwidth, shorter time.
    EXPECT_LT(transferTime(125, 8.0), transferTime(125, 1.0));
}

TEST(SimulatorTest, FiresInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&]() { order.push_back(3); });
    sim.schedule(10, [&]() { order.push_back(1); });
    sim.schedule(20, [&]() { order.push_back(2); });
    sim.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule(100, [&order, i]() { order.push_back(i); });
    sim.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock)
{
    Simulator sim;
    SimTime inner_fired = 0;
    sim.schedule(10, [&]() {
        sim.schedule(5, [&]() { inner_fired = sim.now(); });
    });
    sim.runToCompletion();
    EXPECT_EQ(inner_fired, 15u);
}

TEST(SimulatorTest, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule(10, [&]() { fired = true; });
    sim.cancel(id);
    sim.runToCompletion();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.eventsDispatched(), 0u);
}

TEST(SimulatorTest, CancelOneOfMany)
{
    Simulator sim;
    int count = 0;
    sim.schedule(10, [&]() { ++count; });
    const EventId id = sim.schedule(10, [&]() { count += 100; });
    sim.schedule(10, [&]() { ++count; });
    sim.cancel(id);
    sim.runToCompletion();
    EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&]() { ++fired; });
    sim.schedule(100, [&]() { ++fired; });
    sim.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 50u);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.runUntil(200);
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PeriodicRunsUntilFalse)
{
    Simulator sim;
    int ticks = 0;
    sim.schedulePeriodic(10, [&]() { return ++ticks < 5; });
    sim.runToCompletion();
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(sim.now(), 50u);
}

TEST(SimulatorTest, PeriodicCancellable)
{
    Simulator sim;
    int ticks = 0;
    const EventId id = sim.schedulePeriodic(10, [&]() {
        ++ticks;
        return true;
    });
    sim.schedule(35, [&]() { sim.cancel(id); });
    sim.runUntil(1000);
    EXPECT_EQ(ticks, 3); // fired at 10, 20, 30; cancelled before 40
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty)
{
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.schedule(1, []() {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    SimTime fired_at = 0;
    sim.scheduleAt(123, [&]() { fired_at = sim.now(); });
    sim.runToCompletion();
    EXPECT_EQ(fired_at, 123u);
}

TEST(SimulatorTest, CancelBacklogStaysBounded)
{
    // Regression: cancelling ids of events that already fired used to
    // leave a tombstone in the cancelled-set forever. The set must be
    // pruned against the pending queue once it outgrows the slack.
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
        const EventId id = sim.schedule(1, []() {});
        sim.runToCompletion();
        sim.cancel(id); // no-op: the event is long gone
    }
    EXPECT_LE(sim.cancelledBacklog(), 65u); // not 1000
    EXPECT_EQ(sim.eventsDispatched(), 1000u);
}

TEST(SimulatorTest, CancelOfUnissuedIdIsIgnored)
{
    Simulator sim;
    // Ids never handed out cannot be pending; remembering them would
    // also wrongly cancel the future event that gets that id.
    sim.cancel(12345);
    EXPECT_EQ(sim.cancelledBacklog(), 0u);

    bool fired = false;
    sim.schedule(1, [&]() { fired = true; });
    sim.runToCompletion();
    EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelledPendingEventsLeaveNoResidue)
{
    Simulator sim;
    for (int i = 0; i < 100; ++i)
        sim.cancel(sim.schedule(10, []() {}));
    sim.runToCompletion();
    // Every tombstone was consumed when its event was popped.
    EXPECT_EQ(sim.cancelledBacklog(), 0u);
    EXPECT_EQ(sim.eventsDispatched(), 0u);
}

/** Callable that counts how often it is copied (moves are free). */
struct CopyCountingCallback
{
    std::shared_ptr<int> copies;

    explicit CopyCountingCallback(std::shared_ptr<int> counter)
        : copies(std::move(counter))
    {
    }
    CopyCountingCallback(const CopyCountingCallback &other)
        : copies(other.copies)
    {
        ++*copies;
    }
    CopyCountingCallback(CopyCountingCallback &&) noexcept = default;

    void operator()() const {}
};

TEST(SimulatorTest, DispatchMovesCallbacksOutOfTheQueue)
{
    // The hot path (one pop per event) must move the callback and its
    // captured state out of the heap, never copy it.
    Simulator sim;
    auto copies = std::make_shared<int>(0);
    for (int i = 0; i < 100; ++i)
        sim.schedule(static_cast<SimTime>(i),
                     CopyCountingCallback(copies));
    const int afterScheduling = *copies;
    sim.runToCompletion();
    EXPECT_EQ(sim.eventsDispatched(), 100u);
    EXPECT_EQ(*copies, afterScheduling);
}

TEST(SimulatorTest, ManyEventsStressOrdering)
{
    Simulator sim;
    SimTime last = 0;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i) {
        const SimTime when = static_cast<SimTime>((i * 7919) % 10007);
        sim.scheduleAt(when, [&, when]() {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    sim.runToCompletion();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(sim.eventsDispatched(), 10000u);
}

} // namespace
} // namespace hydra::sim
