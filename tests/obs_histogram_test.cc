/**
 * @file
 * Unit tests for the HDR-style log-linear histogram (DESIGN.md §11):
 * bucket boundary invariants, merge associativity, percentile
 * accuracy against an exact sort, overflow accounting, and a
 * multi-thread stress test that the sanitizer job runs under TSAN.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.hh"
#include "obs/metrics.hh"

using namespace hydra;
using obs::Histogram;

namespace {

/** Deterministic value stream (splitmix64). */
std::uint64_t
mix(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

class HistogramTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::MetricsRegistry::instance().reset(); }
};

// ------------------------------------------------- bucket boundaries

TEST_F(HistogramTest, LinearRegionIsExact)
{
    for (std::uint64_t v = 0; v < Histogram::kLinearBuckets; ++v) {
        EXPECT_EQ(Histogram::bucketOf(v), v);
        EXPECT_EQ(Histogram::bucketLowerBound(v), v);
        EXPECT_EQ(Histogram::bucketUpperBound(v), v + 1);
    }
}

TEST_F(HistogramTest, EveryValueFallsInsideItsBucketBounds)
{
    // Sweep powers of two and their neighbors across the full range.
    std::vector<std::uint64_t> probes = {0, 1, 31, 32, 33, 100, 1000};
    for (std::size_t shift = 6; shift < Histogram::kMaxOrder; ++shift) {
        const std::uint64_t p = 1ull << shift;
        probes.push_back(p - 1);
        probes.push_back(p);
        probes.push_back(p + 1);
        probes.push_back(p + p / 3);
    }
    for (std::uint64_t v : probes) {
        const std::size_t bucket = Histogram::bucketOf(v);
        ASSERT_LT(bucket, Histogram::kOverflowBucket) << v;
        EXPECT_LE(Histogram::bucketLowerBound(bucket), v) << v;
        EXPECT_GT(Histogram::bucketUpperBound(bucket), v) << v;
    }
}

TEST_F(HistogramTest, BucketIndexIsMonotoneAndContiguous)
{
    // Consecutive buckets tile the range with no gaps or overlaps.
    for (std::size_t b = 0; b + 1 < Histogram::kOverflowBucket; ++b) {
        ASSERT_EQ(Histogram::bucketUpperBound(b),
                  Histogram::bucketLowerBound(b + 1))
            << "gap after bucket " << b;
    }
    // Bucket width never exceeds the 1/kSubBuckets relative bound.
    for (std::size_t b = Histogram::kLinearBuckets;
         b < Histogram::kOverflowBucket; ++b) {
        const std::uint64_t lo = Histogram::bucketLowerBound(b);
        const std::uint64_t width = Histogram::bucketUpperBound(b) - lo;
        EXPECT_LE(width * Histogram::kSubBuckets, lo)
            << "bucket " << b << " too wide";
    }
}

TEST_F(HistogramTest, OutOfRangeLandsInOverflowBucket)
{
    EXPECT_EQ(Histogram::bucketOf(1ull << Histogram::kMaxOrder),
              Histogram::kOverflowBucket);
    EXPECT_EQ(Histogram::bucketOf(UINT64_MAX),
              Histogram::kOverflowBucket);
    // Largest in-range value still maps below the overflow bucket.
    EXPECT_LT(Histogram::bucketOf((1ull << Histogram::kMaxOrder) - 1),
              Histogram::kOverflowBucket);
}

// -------------------------------------------------- basic recording

TEST_F(HistogramTest, CountSumMinMaxMean)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    h.record(10);
    h.record(20);
    h.record(60);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 90u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 60u);
    EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST_F(HistogramTest, OverflowSamplesAreCountedAndReported)
{
    obs::MetricsRegistry::instance().reset();
    Histogram h;
    h.record(1ull << 50);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(obs::counter("obs.sample.dropped").value(), 1u);
    const obs::HistogramSummary s = h.summary();
    EXPECT_EQ(s.overflow, 1u);
}

TEST_F(HistogramTest, ResetZeroesEverything)
{
    Histogram h;
    h.record(5);
    h.record(5000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
}

// ------------------------------------------------------------ merge

TEST_F(HistogramTest, MergeIsAssociative)
{
    std::uint64_t seed = 42;
    Histogram a1, b1, c1, a2, b2, c2;
    auto fill = [&](Histogram &first, Histogram &second,
                    std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t v = mix(seed) >> 20; // ~0..2^44
            first.record(v);
            second.record(v);
        }
    };
    // Identical streams into two independent copies of (a, b, c).
    fill(a1, a2, 500);
    fill(b1, b2, 300);
    fill(c1, c2, 200);

    // (a ∪ b) ∪ c
    a1.merge(b1);
    a1.merge(c1);
    // a ∪ (b ∪ c)
    b2.merge(c2);
    a2.merge(b2);

    EXPECT_EQ(a1.count(), a2.count());
    EXPECT_EQ(a1.sum(), a2.sum());
    EXPECT_EQ(a1.min(), a2.min());
    EXPECT_EQ(a1.max(), a2.max());
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
        ASSERT_EQ(a1.bucketCount(b), a2.bucketCount(b)) << b;
}

TEST_F(HistogramTest, MergeWithEmptyIsIdentity)
{
    Histogram a, empty;
    a.record(100);
    a.record(7);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 7u);
    EXPECT_EQ(a.max(), 100u);
}

// ------------------------------------------------------ percentiles

TEST_F(HistogramTest, PercentileMatchesExactSortWithinBucketError)
{
    std::uint64_t seed = 7;
    Histogram h;
    std::vector<std::uint64_t> exact;
    for (std::size_t i = 0; i < 10000; ++i) {
        // Mix of magnitudes: microseconds to tens of milliseconds.
        const std::uint64_t v = (mix(seed) % 50'000'000) + 1000;
        h.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());

    for (double pct : {50.0, 90.0, 99.0, 99.9}) {
        const std::size_t rank = std::min(
            exact.size() - 1,
            static_cast<std::size_t>(pct / 100.0 * exact.size()));
        const double truth = static_cast<double>(exact[rank]);
        const double approx = h.percentile(pct);
        // Bucket relative width is 1/kSubBuckets; allow 2 bucket
        // widths for interpolation and rank rounding.
        const double bound = 2.0 * truth / Histogram::kSubBuckets;
        EXPECT_NEAR(approx, truth, bound) << "p" << pct;
    }
}

TEST_F(HistogramTest, PercentilesClampToObservedRange)
{
    Histogram h;
    h.record(1000);
    h.record(2000);
    EXPECT_GE(h.percentile(0.0), 1000.0);
    EXPECT_LE(h.percentile(100.0), 2000.0);
    EXPECT_EQ(h.percentile(50.0), h.summary().p50);
}

TEST_F(HistogramTest, SummaryAgreesWithAccessors)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v * 10);
    const obs::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, h.count());
    EXPECT_EQ(s.sum, h.sum());
    EXPECT_EQ(s.min, h.min());
    EXPECT_EQ(s.max, h.max());
    EXPECT_DOUBLE_EQ(s.mean, h.mean());
    EXPECT_GT(s.p999, 0.0);
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
    EXPECT_LE(s.p99, s.p999);
}

// ------------------------------------------- concurrency (TSAN job)

TEST_F(HistogramTest, ConcurrentRecordersLoseNothing)
{
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPerThread = 100'000;
    Histogram h;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t]() {
            std::uint64_t seed = 0x1234 + t;
            for (std::size_t i = 0; i < kPerThread; ++i)
                h.record(mix(seed) % 1'000'000);
        });
    }
    // Concurrent readers must be safe (possibly torn, never UB).
    std::uint64_t observed = 0;
    while (observed < kThreads * kPerThread / 2) {
        observed = h.count();
        (void)h.summary();
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_LT(h.max(), 1'000'000u);
}

TEST_F(HistogramTest, EmptyHistogramPercentilesAreZero)
{
    // The SLO engine and report printers probe percentiles before a
    // series records anything; an empty series must answer 0, not
    // garbage from uninitialized min/max bookkeeping.
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.percentile(99.0), 0.0);
    EXPECT_EQ(h.percentile(100.0), 0.0);
    const obs::HistogramSummary summary = h.summary();
    EXPECT_EQ(summary.count, 0u);
    EXPECT_EQ(summary.p50, 0.0);
    EXPECT_EQ(summary.p999, 0.0);
}

TEST_F(HistogramTest, SingleSamplePercentilesCollapseToIt)
{
    Histogram h;
    h.record(777);
    EXPECT_EQ(h.percentile(0.0), 777.0);
    EXPECT_EQ(h.percentile(50.0), 777.0);
    EXPECT_EQ(h.percentile(99.0), 777.0);
    EXPECT_EQ(h.percentile(100.0), 777.0);
    const obs::HistogramSummary summary = h.summary();
    EXPECT_EQ(summary.count, 1u);
    EXPECT_EQ(summary.p50, 777.0);
    EXPECT_EQ(summary.max, 777u);
}

} // namespace
