/**
 * @file
 * Full-system integration tests on the two-machine testbed: the
 * Fig. 8 offloading layout, pixel-exact end-to-end video delivery,
 * recording to the smart disk, replay, the offload-equals-idle CPU
 * property (Tables 3/4), jitter ordering (Table 2), and the PCIe
 * multicast ablation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "core/runtime.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace.hh"
#include "tivo/harness.hh"

namespace hydra::tivo {
namespace {

TestbedConfig
quickConfig(ServerKind server, ClientKind client)
{
    TestbedConfig config;
    config.server = server;
    config.client = client;
    config.duration = sim::seconds(20);
    config.warmup = sim::seconds(2);
    config.sampleInterval = sim::seconds(2);
    config.movieFrames = 96;
    return config;
}

TEST(TestbedTest, IdleBaselineMatchesPaper)
{
    Testbed testbed(quickConfig(ServerKind::None, ClientKind::None));
    const ScenarioResult result = testbed.run();

    // Table 3/4 idle rows: 2.90 % median, 2.86 % average.
    EXPECT_NEAR(result.serverCpuPct.mean(), 2.86, 0.3);
    EXPECT_NEAR(result.clientCpuPct.mean(), 2.86, 0.3);
    EXPECT_EQ(result.serverBusCrossings, 0u);
    EXPECT_EQ(result.packetsReceived, 0u);
    EXPECT_GT(result.serverL2MissRate.mean(), 0.0);
}

TEST(TestbedTest, RunPopulatesObservabilityMetrics)
{
    // A full TiVoPC run must light up the load-bearing instruments:
    // messages crossing channels and transactions crossing the bus.
    auto &registry = obs::MetricsRegistry::instance();
    registry.reset();

    Testbed testbed(
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded));
    const ScenarioResult result = testbed.run();
    ASSERT_TRUE(result.deploymentOk);

    EXPECT_GT(registry.counterTotal("channel.messages_sent"), 0u);
    EXPECT_GT(registry.counterTotal("bus.crossings"), 0u);
    EXPECT_GT(registry.counterTotal("sim.events_dispatched"), 0u);
    EXPECT_GT(registry.counterTotal("loader.deploys"), 0u);
    EXPECT_GT(registry.counterTotal("net.packets_delivered"), 0u);

    const obs::LatencyHistogram *latency = registry.findHistogram(
        "channel.send_latency_ns", {{"transport", "dma-ring"}});
    ASSERT_NE(latency, nullptr);
    EXPECT_GT(latency->count(), 0u);
    EXPECT_GT(latency->max(), 0u);

    // The zero-copy fabric: a full offloaded run moves thousands of
    // messages yet the channel layer never deep-copies one — the
    // counter exists (registered up front) and stays at zero.
    EXPECT_EQ(registry.counterValue("channel.payload_copies",
                                    {{"buffering", "zero-copy"}}),
              0u);
    // Message buffers come from the payload pool and recycle.
    EXPECT_GT(registry.counterTotal("payload.pool_hits"), 0u);
}

TEST(TestbedTest, OffloadedLayoutMatchesFigure8)
{
    Testbed testbed(
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded));
    testbed.offloadedClient()->startWatching();
    testbed.executor().runUntil(sim::seconds(1));
    ASSERT_TRUE(testbed.offloadedClient()->deployed())
        << testbed.offloadedClient()->deploymentError();

    core::Runtime &rt = *testbed.clientRuntime();
    auto placed = [&](const char *name) {
        auto handle = rt.getOffcode(name);
        EXPECT_TRUE(handle.ok()) << name;
        return handle.ok() ? handle.value().deviceAddr()
                           : std::string("<missing>");
    };

    // Paper Fig. 8: Streamer at NIC and smart disk, Decoder and
    // Display pulled together at the GPU, File pulled to the disk,
    // GUI on the host.
    EXPECT_EQ(placed("tivo.StreamerNet"), "client-nic");
    EXPECT_EQ(placed("tivo.StreamerDisk"), "client-disk");
    EXPECT_EQ(placed("tivo.Decoder"), "client-gpu");
    EXPECT_EQ(placed("tivo.Display"), "client-gpu");
    EXPECT_EQ(placed("tivo.File"), "client-disk");
    EXPECT_EQ(placed("tivo.Gui"), "client.host");

    // "The offloading is complete": five of six components left the
    // host (Table 4's framing).
    EXPECT_EQ(rt.stats().offloadedCount, 5u);
}

TEST(TestbedTest, EndToEndVideoIsPixelExact)
{
    TestbedConfig config =
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded);
    Testbed testbed(config);

    std::uint32_t lastSeq = 0;
    bool sawFrame = false;
    testbed.clientEnv()->onFramePresented = [&](std::uint32_t seq) {
        lastSeq = seq;
        sawFrame = true;
    };

    const ScenarioResult result = testbed.run();
    ASSERT_TRUE(result.deploymentOk);
    ASSERT_TRUE(sawFrame);
    EXPECT_GT(result.framesDisplayed, 100u);
    EXPECT_EQ(result.networkDrops, 0u);

    // The frame sitting in the GPU framebuffer must be bit-identical
    // to the synthetic source frame of the same sequence number —
    // the whole NIC -> GPU pipeline is lossless.
    SyntheticVideo source(config.mpeg, config.seed);
    EXPECT_EQ(testbed.gpu().lastFrame(),
              source.frame(lastSeq).pixels);
}

TEST(TestbedTest, RecordingReachesTheSmartDisk)
{
    Testbed testbed(
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded));
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(10));

    auto *file = testbed.offloadedClient()->component<FileOffcode>(
        "tivo.File");
    ASSERT_NE(file, nullptr);
    EXPECT_GT(file->bytesStored(), 1000u);

    auto *diskStreamer =
        testbed.offloadedClient()->component<StreamerDiskOffcode>(
            "tivo.StreamerDisk");
    ASSERT_NE(diskStreamer, nullptr);
    EXPECT_GT(diskStreamer->chunksRecorded(), 100u);

    // The NFS-backed smart disk flushed whole blocks to the NAS.
    EXPECT_TRUE(testbed.nas().hasFile("smartdisk.img"));
}

TEST(TestbedTest, ReplayAfterRecordingDisplaysFrames)
{
    Testbed testbed(
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded));
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(10));

    // Stop the live stream, let the pipeline drain.
    testbed.server()->stop();
    testbed.executor().runUntil(sim::seconds(11));

    auto *display = testbed.offloadedClient()->component<DisplayOffcode>(
        "tivo.Display");
    ASSERT_NE(display, nullptr);
    const auto framesBefore = display->framesPresented();

    ASSERT_TRUE(testbed.offloadedClient()->replay().ok());
    testbed.executor().runUntil(sim::seconds(20));

    auto *diskStreamer =
        testbed.offloadedClient()->component<StreamerDiskOffcode>(
            "tivo.StreamerDisk");
    ASSERT_NE(diskStreamer, nullptr);
    EXPECT_GT(diskStreamer->chunksReplayed(), 100u);
    EXPECT_GT(display->framesPresented(), framesBefore + 50);

    // Stop-replay halts the flow.
    ASSERT_TRUE(testbed.offloadedClient()->stopReplay().ok());
    testbed.executor().runUntil(sim::seconds(21));
    const auto afterStop = diskStreamer->chunksReplayed();
    testbed.executor().runUntil(sim::seconds(23));
    EXPECT_LE(diskStreamer->chunksReplayed(), afterStop + 2);
}

TEST(TestbedTest, OffloadedServerLeavesHostIdle)
{
    Testbed idle(quickConfig(ServerKind::None, ClientKind::None));
    const double idleCpu = idle.run().serverCpuPct.mean();

    Testbed offloaded(
        quickConfig(ServerKind::Offloaded, ClientKind::Receiver));
    const ScenarioResult result = offloaded.run();
    ASSERT_TRUE(result.deploymentOk);
    EXPECT_GT(result.chunksSent, 1000u);

    // Table 3: the offloaded row equals the idle row.
    EXPECT_NEAR(result.serverCpuPct.mean(), idleCpu, 0.05);
    EXPECT_EQ(result.serverBusCrossings, 0u);
}

TEST(TestbedTest, UserSpaceServerBurnsHostCpu)
{
    Testbed simple(quickConfig(ServerKind::Simple, ClientKind::Receiver));
    const ScenarioResult result = simple.run();
    // Table 3: simple server well above idle.
    EXPECT_GT(result.serverCpuPct.mean(), 5.0);
    EXPECT_GT(result.serverBusCrossings, 1000u); // one DMA per send
}

TEST(TestbedTest, JitterOrderingAcrossServers)
{
    auto jitterOf = [](ServerKind kind) {
        Testbed testbed(quickConfig(kind, ClientKind::Receiver));
        return testbed.run().interarrivalMs;
    };

    const SampleSet simple = jitterOf(ServerKind::Simple);
    const SampleSet sendfile = jitterOf(ServerKind::Sendfile);
    const SampleSet offloaded = jitterOf(ServerKind::Offloaded);

    // Table 2 medians: ~7, ~6, ~5 ms.
    EXPECT_NEAR(simple.median(), 7.0, 0.3);
    EXPECT_NEAR(sendfile.median(), 6.0, 0.3);
    EXPECT_NEAR(offloaded.median(), 5.0, 0.1);

    // Table 2 spread: offloaded is an order of magnitude steadier.
    EXPECT_LT(offloaded.stddev(), 0.1);
    EXPECT_GT(simple.stddev(), 5.0 * offloaded.stddev());
    EXPECT_GT(sendfile.stddev(), 5.0 * offloaded.stddev());
    EXPECT_GE(simple.stddev(), sendfile.stddev() * 0.9);
}

TEST(TestbedTest, OnloadedServerTradesACoreForJitter)
{
    // Extension (paper §1.1): Piglet-style onloading. Jitter rivals
    // the offloaded server (no scheduler tick on the dedicated
    // core), but payloads still cross the bus and the I/O core is
    // fully pinned.
    Testbed testbed(
        quickConfig(ServerKind::Onloaded, ClientKind::Receiver));
    auto *onloaded = dynamic_cast<OnloadedServer *>(testbed.server());
    ASSERT_NE(onloaded, nullptr);

    const ScenarioResult result = testbed.run();
    EXPECT_GT(result.chunksSent, 1000u);
    EXPECT_NEAR(result.interarrivalMs.median(), 5.0, 0.1);
    EXPECT_LT(result.interarrivalMs.stddev(), 0.05);

    // Application core stays near idle...
    EXPECT_NEAR(result.serverCpuPct.mean(), 2.86, 0.3);
    // ...but the dedicated I/O core is burned completely...
    const double ioPct =
        static_cast<double>(onloaded->ioCpu().busyTime()) /
        static_cast<double>(testbed.executor().now());
    EXPECT_GT(ioPct, 0.95);
    // ...and unlike the offloaded server, the bus still sees every
    // packet (crossings counted over the measured window only, which
    // excludes warmup; chunksSent spans the whole run).
    EXPECT_GE(result.serverBusCrossings,
              result.chunksSent * 8 / 10);
    EXPECT_GT(result.serverBusCrossings, 1000u);
}

TEST(TestbedTest, UserSpaceClientDecodesButLoadsHost)
{
    Testbed testbed(
        quickConfig(ServerKind::Offloaded, ClientKind::UserSpace));
    const ScenarioResult result = testbed.run();
    ASSERT_TRUE(result.deploymentOk);
    EXPECT_GT(result.framesDisplayed, 100u);
    // Table 4: user-space client ~7 % vs idle ~2.9 %.
    EXPECT_GT(result.clientCpuPct.mean(), 5.0);
    // Every packet crosses the client bus at least once.
    EXPECT_GE(result.clientBusCrossings, result.packetsReceived);
}

TEST(TestbedTest, OffloadedClientMatchesIdleCpu)
{
    Testbed idle(quickConfig(ServerKind::None, ClientKind::None));
    const double idleCpu = idle.run().clientCpuPct.mean();

    Testbed offloaded(
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded));
    const ScenarioResult result = offloaded.run();
    ASSERT_TRUE(result.deploymentOk);
    EXPECT_GT(result.framesDisplayed, 100u);
    // Table 4: offloaded client == idle.
    EXPECT_NEAR(result.clientCpuPct.mean(), idleCpu, 0.05);
}

TEST(TestbedTest, BusMulticastSavesCrossings)
{
    TestbedConfig with =
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded);
    with.busMulticast = true;
    TestbedConfig without = with;
    without.busMulticast = false;

    Testbed a(with);
    const ScenarioResult withResult = a.run();
    Testbed b(without);
    const ScenarioResult withoutResult = b.run();

    ASSERT_TRUE(withResult.deploymentOk);
    ASSERT_TRUE(withoutResult.deploymentOk);
    // Fig. 2's aside: with PCIe-style multicast the NIC's fanout to
    // GPU + disk is one transaction instead of two.
    EXPECT_GT(withoutResult.clientBusCrossings,
              withResult.clientBusCrossings +
                  withResult.packetsReceived / 2);
}

TEST(TestbedTest, StreamSurvivesLossyFabric)
{
    // Unreliable delivery (UDP semantics): the decoder should keep
    // producing frames after resynchronizing on I frames.
    TestbedConfig config =
        quickConfig(ServerKind::Offloaded, ClientKind::UserSpace);
    Testbed testbed(config);
    // Inject drops by reaching into the fabric is not exposed;
    // instead verify the decoder's resync path directly through the
    // user client on a clean run plus the mpeg-level test coverage.
    const ScenarioResult result = testbed.run();
    EXPECT_EQ(result.networkDrops, 0u);
    EXPECT_GT(result.framesDisplayed, 0u);
}

TEST(TestbedTest, DeterministicForFixedSeed)
{
    TestbedConfig config =
        quickConfig(ServerKind::Simple, ClientKind::Receiver);
    config.duration = sim::seconds(10);

    Testbed a(config);
    const ScenarioResult first = a.run();
    Testbed b(config);
    const ScenarioResult second = b.run();

    ASSERT_EQ(first.interarrivalMs.count(), second.interarrivalMs.count());
    EXPECT_DOUBLE_EQ(first.interarrivalMs.mean(),
                     second.interarrivalMs.mean());
    EXPECT_DOUBLE_EQ(first.serverCpuPct.mean(),
                     second.serverCpuPct.mean());
}

#if HYDRA_OBS_TRACING
TEST(TestbedTest, TraceFlowCrossesThreeSites)
{
    // The headline acceptance test for causal tracing: one streamed
    // chunk's spans must form a single trace that crosses at least
    // three distinct execution lanes (host, NIC, disk/GPU...).
    auto &tracer = obs::Tracer::instance();
    tracer.enable(1 << 15);
    obs::resetSpanIds();

    Testbed testbed(
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded));
    const ScenarioResult result = testbed.run();

    std::ostringstream out;
    tracer.writeJson(out);
    tracer.disable();
    tracer.clear();
    ASSERT_TRUE(result.deploymentOk);

    auto doc = hydra::json::parse(out.str());
    ASSERT_TRUE(doc.ok()) << doc.error().describe();
    const hydra::json::Value *events = doc.value().find("traceEvents");
    ASSERT_NE(events, nullptr);

    // Group span slices by trace-id; count each trace's distinct
    // (pid, tid) lanes, i.e. how many sites its causal chain touched.
    std::map<std::uint64_t,
             std::set<std::pair<std::uint64_t, std::uint64_t>>>
        lanesByTrace;
    for (const hydra::json::Value &event : events->array) {
        if (!event.isObject())
            continue;
        const hydra::json::Value *ph = event.find("ph");
        if (!ph || ph->string != "X")
            continue;
        const hydra::json::Value *args = event.find("args");
        if (!args)
            continue;
        const hydra::json::Value *traceId = args->find("trace_id");
        const hydra::json::Value *pid = event.find("pid");
        const hydra::json::Value *tid = event.find("tid");
        if (!traceId || !pid || !tid)
            continue;
        lanesByTrace[traceId->asU64()].insert(
            {pid->asU64(), tid->asU64()});
    }
    ASSERT_FALSE(lanesByTrace.empty());

    std::size_t widest = 0;
    for (const auto &[id, lanes] : lanesByTrace)
        widest = std::max(widest, lanes.size());
    EXPECT_GE(widest, 3u)
        << "no trace crossed 3 execution sites (widest=" << widest
        << " across " << lanesByTrace.size() << " traces)";
}
#endif // HYDRA_OBS_TRACING

TEST(TestbedTest, IntrospectionCoversEveryDeployedOffcode)
{
    // Snapshot mid-run (not after run(), which stops every Offcode):
    // introspection is meant to answer "what is running right now".
    Testbed testbed(
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded));
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(10));
    ASSERT_TRUE(testbed.offloadedClient()->deployed())
        << testbed.offloadedClient()->deploymentError();

    core::Runtime &rt = *testbed.clientRuntime();
    const core::IntrospectionSnapshot snap = rt.introspect();
    ASSERT_FALSE(snap.offcodes.empty());

    auto find =
        [&](const std::string &name) -> const core::OffcodeIntrospection * {
        for (const core::OffcodeIntrospection &oc : snap.offcodes)
            if (oc.bindname == name)
                return &oc;
        return nullptr;
    };

    // Every Fig. 8 component plus the monitor pseudo-Offcode reports
    // in, each in the Started state.
    for (const char *name :
         {"tivo.StreamerNet", "tivo.StreamerDisk", "tivo.Decoder",
          "tivo.Display", "tivo.File", "tivo.Gui", "hydra.Monitor"}) {
        const core::OffcodeIntrospection *oc = find(name);
        ASSERT_NE(oc, nullptr) << name;
        EXPECT_EQ(oc->state, "Started") << name;
    }

    // Components on the datapath accumulated real telemetry.
    const core::OffcodeIntrospection *decoder = find("tivo.Decoder");
    EXPECT_GT(decoder->telemetry.dataHandled, 0u);
    EXPECT_GT(decoder->telemetry.busyNs, 0u);
    EXPECT_GT(decoder->telemetry.lastActivityAt, 0u);

    // The JSON form parses and lists the same population.
    auto doc = hydra::json::parse(rt.introspectJson());
    ASSERT_TRUE(doc.ok()) << doc.error().describe();
    const hydra::json::Value *offcodes = doc.value().find("offcodes");
    ASSERT_NE(offcodes, nullptr);
    EXPECT_EQ(offcodes->array.size(), snap.offcodes.size());
}

TEST(TestbedTest, DifferentSeedsDifferentNoise)
{
    TestbedConfig config =
        quickConfig(ServerKind::Simple, ClientKind::Receiver);
    config.duration = sim::seconds(10);
    Testbed a(config);
    config.seed = 2;
    Testbed b(config);
    EXPECT_NE(a.run().interarrivalMs.mean(),
              b.run().interarrivalMs.mean());
}

/**
 * CPU attribution invariant: for every execution site, the busy and
 * idle counters a run accumulates sum to exactly the virtual time the
 * run covered — the clamped-delta accounting may defer busy time, but
 * it never loses or invents any. Checked on both engines; metrics are
 * process-cumulative, so everything is measured as deltas across one
 * Testbed whose construction re-baselines the site entries.
 */
void
expectBusyPlusIdleEqualsElapsed(exec::ExecutorKind kind)
{
    TestbedConfig config =
        quickConfig(ServerKind::Offloaded, ClientKind::Offloaded);
    config.executor = kind;
    config.duration = sim::seconds(10);
    Testbed testbed(config);

    auto &registry = obs::MetricsRegistry::instance();
    const std::vector<std::string> sites = {
        "server.host", "client.host",  "server-nic",
        "client-nic",  "client-disk", "client-gpu"};
    // Testbed site names encode their machine ("server.host",
    // "client-gpu"), which is exactly the host= label attribution adds.
    const auto hostOf = [](const std::string &site) {
        return site.substr(0, site.find_first_of(".-"));
    };
    std::map<std::string, std::uint64_t> busyBefore, idleBefore;
    for (const std::string &site : sites) {
        busyBefore[site] = registry.counterValue(
            "exec.site_busy_ns",
            {{"site", site}, {"host", hostOf(site)}});
        idleBefore[site] = registry.counterValue(
            "exec.site_idle_ns",
            {{"site", site}, {"host", hostOf(site)}});
    }
    const std::uint64_t decoderCpuBefore =
        registry.counterValue("offcode.cpu_ns",
                              {{"offcode", "tivo.Decoder"}});

    const ScenarioResult result = testbed.run();
    ASSERT_TRUE(result.deploymentOk);

    // Sites register at construction (virtual time 0) and the harness
    // syncs one final time at the end of the measured window, so the
    // covered interval is exactly [0, now].
    const std::uint64_t elapsed = testbed.executor().now();
    ASSERT_GT(elapsed, 0u);
    for (const std::string &site : sites) {
        const std::uint64_t busy =
            registry.counterValue(
                "exec.site_busy_ns",
                {{"site", site}, {"host", hostOf(site)}}) -
            busyBefore[site];
        const std::uint64_t idle =
            registry.counterValue(
                "exec.site_idle_ns",
                {{"site", site}, {"host", hostOf(site)}}) -
            idleBefore[site];
        EXPECT_EQ(busy + idle, elapsed) << site;
    }

    // The pipeline ran, so its devices burned CPU and the per-Offcode
    // attribution saw it.
    EXPECT_GT(registry.counterValue(
                  "exec.site_busy_ns",
                  {{"site", "client-gpu"}, {"host", "client"}}),
              busyBefore["client-gpu"]);
    EXPECT_GT(registry.counterValue("offcode.cpu_ns",
                                    {{"offcode", "tivo.Decoder"}}),
              decoderCpuBefore);
}

TEST(TestbedTest, CpuAttributionCoversElapsedSim)
{
    expectBusyPlusIdleEqualsElapsed(exec::ExecutorKind::Sim);
}

TEST(TestbedTest, CpuAttributionCoversElapsedThreaded)
{
    expectBusyPlusIdleEqualsElapsed(exec::ExecutorKind::Threaded);
}

} // namespace
} // namespace hydra::tivo
