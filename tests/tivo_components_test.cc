/**
 * @file
 * Component-level tests for the TiVoPC Offcodes: lifecycle, the File
 * Offcode's interface methods, the disk Streamer's replay state
 * machine, the server File's credit-based prefetch, decoder
 * resynchronization under packet loss, and host-fallback paths.
 */

#include <gtest/gtest.h>

#include "tivo/harness.hh"

namespace hydra::tivo {
namespace {

TestbedConfig
offloadedConfig()
{
    TestbedConfig config;
    config.server = ServerKind::Offloaded;
    config.client = ClientKind::Offloaded;
    config.duration = sim::seconds(15);
    config.warmup = sim::seconds(2);
    config.movieFrames = 96;
    return config;
}

TEST(ComponentTest, FileOffcodeReadAndSizeMethods)
{
    Testbed testbed(offloadedConfig());
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(5));

    auto *file = testbed.offloadedClient()->component<FileOffcode>(
        "tivo.File");
    ASSERT_NE(file, nullptr);
    const std::uint64_t stored = file->bytesStored();
    ASSERT_GT(stored, 0u);

    // Size method.
    auto size = file->invoke("Size", Bytes{});
    ASSERT_TRUE(size.ok());
    ByteReader sizeReader(size.value());
    EXPECT_EQ(sizeReader.readU64().value(), stored);

    // Read method returns the recorded prefix bytes.
    Bytes args;
    ByteWriter writer(args);
    writer.writeU64(0);
    writer.writeU32(64);
    auto data = file->invoke("Read", args);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value().size(), 64u);

    // Reading past EOF yields empty (EOF marker for replay).
    Bytes eofArgs;
    ByteWriter eofWriter(eofArgs);
    eofWriter.writeU64(stored + 100);
    eofWriter.writeU32(64);
    auto eof = file->invoke("Read", eofArgs);
    ASSERT_TRUE(eof.ok());
    EXPECT_TRUE(eof.value().empty());

    // Bad arguments are rejected.
    EXPECT_FALSE(file->invoke("Read", Bytes{1, 2}).ok());
    EXPECT_FALSE(file->invoke("NoSuchMethod", Bytes{}).ok());
}

TEST(ComponentTest, RecordedStreamMatchesWire)
{
    // The disk Streamer stores chunks unmodified, so the recording
    // must be a byte-exact prefix of the movie stream.
    TestbedConfig config = offloadedConfig();
    Testbed testbed(config);
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(5));

    auto *file = testbed.offloadedClient()->component<FileOffcode>(
        "tivo.File");
    ASSERT_NE(file, nullptr);
    ASSERT_GT(file->bytesStored(), 2048u);

    Bytes args;
    ByteWriter writer(args);
    writer.writeU64(0);
    writer.writeU32(2048);
    auto recorded = file->invoke("Read", args);
    ASSERT_TRUE(recorded.ok());

    const Bytes movie =
        encodeMovie(config.mpeg, config.movieFrames, config.seed);
    ASSERT_GE(movie.size(), 2048u);
    EXPECT_TRUE(std::equal(recorded.value().begin(),
                           recorded.value().end(), movie.begin()));
}

TEST(ComponentTest, ReplayStateMachine)
{
    Testbed testbed(offloadedConfig());
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(5));
    testbed.server()->stop();
    testbed.executor().runUntil(sim::seconds(6));

    auto *diskStreamer =
        testbed.offloadedClient()->component<StreamerDiskOffcode>(
            "tivo.StreamerDisk");
    ASSERT_NE(diskStreamer, nullptr);
    EXPECT_FALSE(diskStreamer->replaying());

    // Start replay; duplicate requests are idempotent.
    testbed.offloadedClient()->replay();
    testbed.offloadedClient()->replay();
    testbed.executor().runUntil(sim::seconds(8));
    EXPECT_TRUE(diskStreamer->replaying());
    const auto replayed = diskStreamer->chunksReplayed();
    EXPECT_GT(replayed, 0u);

    // Stop; counter freezes.
    testbed.offloadedClient()->stopReplay();
    testbed.executor().runUntil(sim::seconds(9));
    const auto frozen = diskStreamer->chunksReplayed();
    testbed.executor().runUntil(sim::seconds(11));
    EXPECT_LE(diskStreamer->chunksReplayed(), frozen + 1);
    EXPECT_FALSE(diskStreamer->replaying());

    // Replay can be restarted (from the beginning of the recording).
    testbed.offloadedClient()->replay();
    testbed.executor().runUntil(sim::seconds(13));
    EXPECT_GT(diskStreamer->chunksReplayed(), frozen);
}

TEST(ComponentTest, ReplayDrainsToEndOfRecordingAndStops)
{
    Testbed testbed(offloadedConfig());
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(4));
    testbed.server()->stop();
    testbed.executor().runUntil(sim::seconds(5));

    auto *file = testbed.offloadedClient()->component<FileOffcode>(
        "tivo.File");
    auto *diskStreamer =
        testbed.offloadedClient()->component<StreamerDiskOffcode>(
            "tivo.StreamerDisk");
    ASSERT_NE(file, nullptr);
    ASSERT_NE(diskStreamer, nullptr);

    const std::uint64_t recordedBytes = file->bytesStored();
    const auto recordedChunks = recordedBytes / 1024;

    testbed.offloadedClient()->replay();
    // ~4 s of recording at 5 ms per chunk takes ~4 s to replay; give
    // it ample time and verify it self-terminates at EOF.
    testbed.executor().runUntil(sim::seconds(5) +
                                 sim::milliseconds(6) *
                                     (recordedChunks + 100));
    EXPECT_FALSE(diskStreamer->replaying());
    EXPECT_GE(diskStreamer->chunksReplayed() + 1, recordedChunks);
}

TEST(ComponentTest, ServerFileCreditFlowKeepsBufferBounded)
{
    Testbed testbed(offloadedConfig());
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(10));

    core::Runtime &rt = *testbed.serverRuntime();
    auto fileHandle = rt.getOffcode("tivo.server.File");
    auto streamerHandle = rt.getOffcode("tivo.server.Streamer");
    ASSERT_TRUE(fileHandle.ok());
    ASSERT_TRUE(streamerHandle.ok());

    const auto *file = static_cast<const ServerFileOffcode *>(
        fileHandle.value().offcode);
    const auto *streamer = static_cast<const ServerStreamerOffcode *>(
        streamerHandle.value().offcode);

    // The streamer consumed ~ (10 s - startup) / 5 ms chunks; File
    // can only ever be one prefetch window ahead of consumption.
    EXPECT_GT(streamer->chunksSent(), 1500u);
    EXPECT_LE(file->chunksServed(),
              streamer->chunksSent() + 32 /*prefetchWindow*/ + 1);
    EXPECT_GE(file->chunksServed(), streamer->chunksSent());
    // Steady state reached without underruns after the first window.
    EXPECT_LE(streamer->underruns(), 2u);
}

TEST(ComponentTest, DecoderResynchronizesUnderPacketLoss)
{
    TestbedConfig config = offloadedConfig();
    config.dropProbability = 0.05; // 5 % video datagram loss
    config.duration = sim::seconds(30);
    Testbed testbed(config);
    const ScenarioResult result = testbed.run();

    ASSERT_TRUE(result.deploymentOk);
    EXPECT_GT(result.networkDrops, 50u);

    auto *decoder = testbed.offloadedClient()->component<DecoderOffcode>(
        "tivo.Decoder");
    ASSERT_NE(decoder, nullptr);
    // Losses corrupt GOPs, but the decoder recovers on I frames and
    // keeps presenting video.
    EXPECT_GT(decoder->decodeErrors(), 0u);
    EXPECT_GT(result.framesDisplayed, 200u);
}

TEST(ComponentTest, GuiReplayFailsBeforeDeployment)
{
    Testbed testbed(offloadedConfig());
    // No startWatching(): nothing deployed yet.
    Status replay = testbed.offloadedClient()->replay();
    EXPECT_FALSE(replay);
}

TEST(ComponentTest, StopQuiescesThePipeline)
{
    Testbed testbed(offloadedConfig());
    testbed.offloadedClient()->startWatching();
    testbed.server()->startStreaming();
    testbed.executor().runUntil(sim::seconds(5));

    testbed.server()->stop();
    testbed.offloadedClient()->stop();
    testbed.executor().runUntil(sim::seconds(6));

    auto *display = testbed.offloadedClient()->component<DisplayOffcode>(
        "tivo.Display");
    ASSERT_NE(display, nullptr);
    const auto frames = display->framesPresented();
    testbed.executor().runUntil(sim::seconds(8));
    // Nothing flows after stop.
    EXPECT_EQ(display->framesPresented(), frames);
}

TEST(ComponentTest, OffcodeLifecycleOrderEnforced)
{
    auto env = std::make_shared<TivoEnv>();
    DecoderOffcode decoder(env);

    // Start before initialize is rejected.
    EXPECT_FALSE(decoder.doStart().ok());
    EXPECT_EQ(decoder.state(), core::OffcodeState::Created);
}

} // namespace
} // namespace hydra::tivo
