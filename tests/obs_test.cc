/**
 * @file
 * Tests for the observability subsystem: metrics registry semantics,
 * trace JSON well-formedness, ring-buffer bounding, and the
 * disabled-mode fast path.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "json_checker.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace hydra;
using hydra::testutil::JsonChecker;

namespace {

/** Fresh-state fixture: every test starts with zeroed instruments. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::MetricsRegistry::instance().reset();
        obs::Tracer::instance().disable();
        obs::Tracer::instance().clear();
    }

    void
    TearDown() override
    {
        obs::Tracer::instance().disable();
        obs::MetricsRegistry::instance().reset();
    }
};

} // namespace

// --------------------------------------------------------- counters

TEST_F(ObsTest, CounterAccumulates)
{
    obs::Counter &c = obs::counter("test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(ObsTest, SameNameSameHandle)
{
    obs::Counter &a = obs::counter("test.same");
    obs::Counter &b = obs::counter("test.same");
    EXPECT_EQ(&a, &b);
    a.increment();
    EXPECT_EQ(b.value(), 1u);
}

TEST_F(ObsTest, LabelsDistinguishInstruments)
{
    obs::Counter &red = obs::counter("test.labeled", {{"color", "red"}});
    obs::Counter &blue = obs::counter("test.labeled", {{"color", "blue"}});
    EXPECT_NE(&red, &blue);
    red.add(3);
    blue.add(4);
    auto &registry = obs::MetricsRegistry::instance();
    EXPECT_EQ(registry.counterValue("test.labeled", {{"color", "red"}}), 3u);
    EXPECT_EQ(registry.counterTotal("test.labeled"), 7u);
}

TEST_F(ObsTest, LabelOrderDoesNotMatter)
{
    obs::Counter &ab =
        obs::counter("test.order", {{"a", "1"}, {"b", "2"}});
    obs::Counter &ba =
        obs::counter("test.order", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&ab, &ba);
}

TEST_F(ObsTest, ResetZeroesButKeepsHandles)
{
    obs::Counter &c = obs::counter("test.reset");
    c.add(10);
    obs::MetricsRegistry::instance().reset();
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    EXPECT_EQ(obs::MetricsRegistry::instance().counterValue("test.reset"),
              1u);
}

// ----------------------------------------------------------- gauges

TEST_F(ObsTest, GaugeHoldsLastValue)
{
    obs::Gauge &g = obs::gauge("test.gauge");
    g.set(5.0);
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ------------------------------------------------------- histograms

TEST_F(ObsTest, HistogramSummaries)
{
    obs::LatencyHistogram &h = obs::histogram("test.hist");
    h.record(100);
    h.record(200);
    h.record(300);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 600u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
    // Log2 buckets bound percentiles to within the containing bucket,
    // clamped by the observed extrema.
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 100.0);
    EXPECT_LE(p50, 300.0);
}

TEST_F(ObsTest, HistogramEmptyIsSafe)
{
    obs::LatencyHistogram &h = obs::histogram("test.hist.empty");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST_F(ObsTest, HistogramBucketsAreLogLinear)
{
    obs::LatencyHistogram &h = obs::histogram("test.hist.buckets");
    // Linear region: values below 32 land in their own bucket.
    h.record(0);
    h.record(1);
    h.record(7);
    h.record(31);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(7), 1u);
    EXPECT_EQ(h.bucketCount(31), 1u);
    // Log region: each bucket spans [lowerBound, upperBound).
    h.record(100);
    const std::size_t bucket = obs::Histogram::bucketOf(100);
    EXPECT_EQ(h.bucketCount(bucket), 1u);
    EXPECT_LE(obs::Histogram::bucketLowerBound(bucket), 100u);
    EXPECT_GT(obs::Histogram::bucketUpperBound(bucket), 100u);
}

// ------------------------------------------------------ JSON export

TEST_F(ObsTest, MetricsJsonIsWellFormed)
{
    obs::counter("test.json.counter", {{"kind", "a\"b\\c"}}).add(7);
    obs::gauge("test.json.gauge").set(1.25);
    obs::histogram("test.json.hist").record(1000);

    const std::string json = obs::MetricsRegistry::instance().toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":7"), std::string::npos);
    EXPECT_NE(json.find("\"unit\":\"ns\""), std::string::npos);
}

TEST_F(ObsTest, PrettyTableListsEveryInstrument)
{
    obs::counter("test.table.counter").add(3);
    obs::histogram("test.table.hist").record(50);
    const std::string table =
        obs::MetricsRegistry::instance().prettyTable();
    EXPECT_NE(table.find("test.table.counter"), std::string::npos);
    EXPECT_NE(table.find("test.table.hist"), std::string::npos);
}

// ----------------------------------------------------------- tracer

TEST_F(ObsTest, TraceJsonIsWellFormedChromeSchema)
{
    auto &tracer = obs::Tracer::instance();
    tracer.enable(64);
    const obs::TraceLane lane = tracer.lane("client", "nic");
    tracer.complete(lane, "bus.xfer", "bus", 1000, 500);
    tracer.instant(lane, "drop", "net", 2500);
    tracer.counterSample(lane, "queue", 3000, 4.0);

    std::ostringstream out;
    tracer.writeJson(out);
    const std::string json = out.str();

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    // Chrome trace_event required fields.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"bus.xfer\""), std::string::npos);
    // Lane metadata for Perfetto track names.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"client\""), std::string::npos);
}

TEST_F(ObsTest, LanesAreInternedStably)
{
    auto &tracer = obs::Tracer::instance();
    tracer.enable(16);
    const obs::TraceLane a1 = tracer.lane("server", "nic");
    const obs::TraceLane a2 = tracer.lane("server", "nic");
    const obs::TraceLane b = tracer.lane("server", "disk");
    const obs::TraceLane c = tracer.lane("client", "nic");
    EXPECT_EQ(a1.pid, a2.pid);
    EXPECT_EQ(a1.tid, a2.tid);
    EXPECT_EQ(a1.pid, b.pid);
    EXPECT_NE(a1.tid, b.tid);
    EXPECT_NE(a1.pid, c.pid);
}

TEST_F(ObsTest, RingBufferOverwritesOldest)
{
    auto &tracer = obs::Tracer::instance();
    tracer.enable(8);
    const obs::TraceLane lane = tracer.lane("p", "t");
    for (int i = 0; i < 20; ++i)
        tracer.instant(lane, "e" + std::to_string(i), "test",
                       static_cast<sim::SimTime>(i) * 100);

    EXPECT_EQ(tracer.eventsRecorded(), 8u);
    EXPECT_EQ(tracer.eventsOverwritten(), 12u);

    std::ostringstream out;
    tracer.writeJson(out);
    const std::string json = out.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    // The oldest events are gone, the newest survive.
    EXPECT_EQ(json.find("\"e0\""), std::string::npos);
    EXPECT_NE(json.find("\"e19\""), std::string::npos);
    EXPECT_NE(json.find("\"overwritten\":12"), std::string::npos);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing)
{
    auto &tracer = obs::Tracer::instance();
    ASSERT_FALSE(tracer.enabled());
    EXPECT_FALSE(HYDRA_TRACE_ACTIVE());

    // Macro form: the body must not evaluate when disabled.
    int evaluations = 0;
    auto touch = [&]() {
        ++evaluations;
        return tracer.lane("p", "t");
    };
    HYDRA_TRACE_COMPLETE(touch(), "never", "test", 0, 1);
    HYDRA_TRACE_INSTANT(touch(), "never", "test", 0);
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(tracer.eventsRecorded(), 0u);

    // Direct calls while disabled are dropped too.
    tracer.complete(obs::TraceLane{}, "direct", "test", 0, 1);
    EXPECT_EQ(tracer.eventsRecorded(), 0u);
}

TEST_F(ObsTest, EnableResetsRing)
{
    auto &tracer = obs::Tracer::instance();
    tracer.enable(8);
    tracer.instant(tracer.lane("p", "t"), "old", "test", 1);
    EXPECT_EQ(tracer.eventsRecorded(), 1u);
    tracer.enable(8); // re-enable = fresh ring
    EXPECT_EQ(tracer.eventsRecorded(), 0u);
    EXPECT_EQ(tracer.eventsOverwritten(), 0u);
}

TEST_F(ObsTest, RingOverflowCountsDroppedEventsMetric)
{
    auto &tracer = obs::Tracer::instance();
    tracer.enable(4);
    const obs::TraceLane lane = tracer.lane("p", "t");
    for (int i = 0; i < 10; ++i)
        tracer.instant(lane, "e", "test",
                       static_cast<sim::SimTime>(i) * 10);

    // Overflow is visible both on the tracer and as a metric, so a
    // metrics-only consumer still learns the trace was truncated.
    EXPECT_EQ(tracer.eventsOverwritten(), 6u);
    EXPECT_EQ(obs::MetricsRegistry::instance().counterValue(
                  "obs.trace.dropped_events"),
              6u);
}

// ------------------------------------------------- shared JSON escaper

TEST_F(ObsTest, SharedEscaperHandlesControlAndQuoteCharacters)
{
    std::ostringstream out;
    obs::writeJsonString(out, "a\"b\\c\n\r\t\b\f\x01z");
    const std::string json = out.str();
    EXPECT_EQ(json, "\"a\\\"b\\\\c\\n\\r\\t\\b\\f\\u0001z\"");

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
}

TEST_F(ObsTest, SharedEscaperPassesHighBytesThrough)
{
    // UTF-8 multibyte sequences (bytes >= 0x80) must pass through
    // unescaped; a signed-char comparison would mangle them into
    // bogus \uffxx escapes.
    const std::string utf8 = "caf\xc3\xa9";
    std::ostringstream out;
    obs::writeJsonString(out, utf8);
    EXPECT_EQ(out.str(), "\"" + utf8 + "\"");
}

TEST_F(ObsTest, MetricsJsonEscapesControlCharactersInLabels)
{
    obs::counter("test.esc", {{"k", "line1\nline2"}}).add(1);
    const std::string json = obs::MetricsRegistry::instance().toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

// ------------------------------------------------------- pretty table

TEST_F(ObsTest, PrettyTableIsSortedByName)
{
    obs::counter("test.zz.last").add(1);
    obs::counter("test.aa.first").add(1);
    obs::counter("test.mm.middle").add(1);
    const std::string table =
        obs::MetricsRegistry::instance().prettyTable();
    const std::size_t first = table.find("test.aa.first");
    const std::size_t middle = table.find("test.mm.middle");
    const std::size_t last = table.find("test.zz.last");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(middle, std::string::npos);
    ASSERT_NE(last, std::string::npos);
    EXPECT_LT(first, middle);
    EXPECT_LT(middle, last);
}

TEST_F(ObsTest, PrettyTableAlignsValueColumn)
{
    obs::counter("test.align.short").add(1);
    obs::counter("test.align.much-longer-name").add(2);
    const std::string table =
        obs::MetricsRegistry::instance().prettyTable();

    // Every counter row pads the name to a common column, so the
    // value column starts at the same offset on each line.
    std::istringstream lines(table);
    std::string line;
    std::size_t valueColumn = std::string::npos;
    while (std::getline(lines, line)) {
        if (line.find("test.align.") == std::string::npos)
            continue;
        const std::size_t column = line.find_last_of(' ');
        if (valueColumn == std::string::npos)
            valueColumn = column;
        else
            EXPECT_EQ(column, valueColumn) << table;
    }
    EXPECT_NE(valueColumn, std::string::npos);
}
