/**
 * @file
 * Tests for the runtime side of HYDRA: hierarchical resources,
 * memory pinning, the Offcode depot, layout-graph construction,
 * loaders, the full Fig. 5 deployment pipeline, pseudo Offcodes,
 * and OOB invocation.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "dev/gpu.hh"
#include "dev/nic.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

namespace hydra::core {
namespace {

// ------------------------------------------------------------ Resources

TEST(ResourceTest, CreateAndRelease)
{
    ResourceManager rm;
    bool released = false;
    auto id = rm.create(rm.root(), "channel", "oob",
                        [&]() { released = true; });
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(rm.activeCount(), 1u);
    EXPECT_TRUE(rm.release(id.value()).ok());
    EXPECT_TRUE(released);
    EXPECT_EQ(rm.activeCount(), 0u);
}

TEST(ResourceTest, CascadingReleaseChildrenFirst)
{
    ResourceManager rm;
    std::vector<std::string> order;
    auto parent = rm.create(rm.root(), "offcode", "parent",
                            [&]() { order.push_back("parent"); });
    auto child = rm.create(parent.value(), "channel", "child",
                           [&]() { order.push_back("child"); });
    auto grandchild = rm.create(child.value(), "pin", "grandchild",
                                [&]() { order.push_back("grandchild"); });
    (void)grandchild;

    rm.release(parent.value());
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "grandchild");
    EXPECT_EQ(order[1], "child");
    EXPECT_EQ(order[2], "parent");
    EXPECT_EQ(rm.activeCount(), 0u);
}

TEST(ResourceTest, ReleaseDetachesFromParent)
{
    ResourceManager rm;
    auto parent = rm.create(rm.root(), "a", "p");
    auto child = rm.create(parent.value(), "b", "c");
    rm.release(child.value());
    EXPECT_TRUE(rm.childrenOf(parent.value()).empty());
    EXPECT_TRUE(rm.exists(parent.value()));
}

TEST(ResourceTest, BadParentRejected)
{
    ResourceManager rm;
    EXPECT_FALSE(rm.create(99999, "x", "y").ok());
}

TEST(ResourceTest, CannotReleaseRootOrUnknown)
{
    ResourceManager rm;
    EXPECT_FALSE(rm.release(rm.root()).ok());
    EXPECT_FALSE(rm.release(424242).ok());
}

TEST(ResourceTest, DescribeShowsKindAndName)
{
    ResourceManager rm;
    auto id = rm.create(rm.root(), "offcode", "tivo.Decoder");
    EXPECT_EQ(rm.describe(id.value()).value(), "offcode:tivo.Decoder");
}

// ------------------------------------------------------------- Memory

class MemoryFixture : public ::testing::Test
{
  protected:
    MemoryFixture()
        : machine_(sim_, hw::MachineConfig{}),
          memory_(machine_.os(), 16 * 1024)
    {
    }

    exec::SimExecutor sim_;
    hw::Machine machine_;
    MemoryManager memory_;
};

TEST_F(MemoryFixture, PinAccountsAndUnpinsViaRaii)
{
    const hw::Addr buf = memory_.allocBuffer(8192);
    {
        auto pinned = memory_.pin(buf, 8192);
        ASSERT_TRUE(pinned.ok());
        EXPECT_EQ(memory_.pinnedBytes(), 8192u);
        EXPECT_EQ(memory_.activePins(), 1u);
    }
    EXPECT_EQ(memory_.pinnedBytes(), 0u);
    EXPECT_EQ(memory_.activePins(), 0u);
}

TEST_F(MemoryFixture, PinLimitEnforced)
{
    auto first = memory_.pin(0x1000, 12 * 1024);
    ASSERT_TRUE(first.ok());
    auto second = memory_.pin(0x9000, 8 * 1024);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, ErrorCode::ResourceExhausted);

    first.value().reset();
    EXPECT_TRUE(memory_.pin(0x9000, 8 * 1024).ok());
}

TEST_F(MemoryFixture, ZeroByteRejectedAndMoveTransfersOwnership)
{
    EXPECT_FALSE(memory_.pin(0, 0).ok());

    auto pinned = memory_.pin(0x1000, 1024);
    ASSERT_TRUE(pinned.ok());
    PinnedRegion moved = std::move(pinned).value();
    EXPECT_TRUE(moved.valid());
    EXPECT_EQ(memory_.activePins(), 1u);
    moved.reset();
    EXPECT_EQ(memory_.activePins(), 0u);
}

// ---------------------------------------------------------------- Depot

/** Trivial Offcode used in deployment tests. */
class NullOffcode : public Offcode
{
  public:
    explicit NullOffcode(std::string name) : Offcode(std::move(name)) {}
};

std::string
simpleOdf(const std::string &bindname, const std::string &imports = "")
{
    return "<offcode><package><bindname>" + bindname +
           "</bindname></package><sw-env>" + imports +
           "</sw-env><targets><host-fallback/></targets></offcode>";
}

std::string
importOf(const std::string &bindname, const std::string &constraint)
{
    return "<import><bindname>" + bindname + "</bindname><reference type=\"" +
           constraint + "\"/></import>";
}

TEST(DepotTest, RegisterAndFind)
{
    OffcodeDepot depot;
    ASSERT_TRUE(depot
                    .registerOffcode(simpleOdf("a.b"),
                                     []() {
                                         return std::make_unique<
                                             NullOffcode>("a.b");
                                     })
                    .ok());
    EXPECT_EQ(depot.size(), 1u);
    EXPECT_TRUE(depot.findByBindname("a.b").ok());
    EXPECT_TRUE(depot.findByGuid(Guid::fromName("a.b")).ok());
    EXPECT_FALSE(depot.findByBindname("missing").ok());
}

TEST(DepotTest, InvalidManifestRejected)
{
    OffcodeDepot depot;
    Status bad = depot.registerOffcode(
        "<offcode><package><bindname></bindname></package></offcode>",
        []() { return std::make_unique<NullOffcode>("x"); });
    EXPECT_FALSE(bad);
}

TEST(DepotTest, MissingFactoryRejected)
{
    OffcodeDepot depot;
    DepotEntry entry;
    auto manifest = odf::OdfDocument::parse(simpleOdf("x"));
    entry.manifest = manifest.value();
    EXPECT_FALSE(depot.registerOffcode(std::move(entry)).ok());
}

// ---------------------------------------------------------- LayoutGraph

TEST(LayoutGraphTest, FollowsImportsTransitively)
{
    OffcodeDepot depot;
    auto factory = [](const std::string &name) {
        return [name]() { return std::make_unique<NullOffcode>(name); };
    };
    depot.registerOffcode(simpleOdf("root", importOf("mid", "Gang")),
                          factory("root"));
    depot.registerOffcode(simpleOdf("mid", importOf("leaf", "Pull")),
                          factory("mid"));
    depot.registerOffcode(simpleOdf("leaf"), factory("leaf"));

    auto graph = LayoutGraph::build(
        depot, *depot.findByBindname("root").value());
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph.value().nodes().size(), 3u);
    ASSERT_EQ(graph.value().edges().size(), 2u);
    EXPECT_EQ(graph.value().edges()[0].kind, odf::ConstraintType::Gang);
    EXPECT_EQ(graph.value().edges()[1].kind, odf::ConstraintType::Pull);
    EXPECT_EQ(graph.value().indexOf("leaf"), 2u);
    EXPECT_EQ(graph.value().indexOf("nope"), SIZE_MAX);
}

TEST(LayoutGraphTest, CyclesTerminate)
{
    OffcodeDepot depot;
    auto factory = [](const std::string &name) {
        return [name]() { return std::make_unique<NullOffcode>(name); };
    };
    depot.registerOffcode(simpleOdf("a", importOf("b", "Link")),
                          factory("a"));
    depot.registerOffcode(simpleOdf("b", importOf("a", "Link")),
                          factory("b"));
    auto graph =
        LayoutGraph::build(depot, *depot.findByBindname("a").value());
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph.value().nodes().size(), 2u);
    EXPECT_EQ(graph.value().edges().size(), 2u);
}

TEST(LayoutGraphTest, UnresolvedImportFails)
{
    OffcodeDepot depot;
    depot.registerOffcode(
        simpleOdf("a", importOf("ghost", "Pull")),
        []() { return std::make_unique<NullOffcode>("a"); });
    auto graph =
        LayoutGraph::build(depot, *depot.findByBindname("a").value());
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.error().code, ErrorCode::NotFound);
}

// -------------------------------------------------------------- Runtime

class RuntimeFixture : public ::testing::Test
{
  protected:
    RuntimeFixture()
        : machine_(sim_, hw::MachineConfig{}),
          net_(sim_, net::NetworkConfig{})
    {
        nicNode_ = net_.addNode("nic");
        nic_ = std::make_unique<dev::ProgrammableNic>(
            sim_, machine_.bus(), net_, nicNode_);
        gpu_ = std::make_unique<dev::Gpu>(sim_, machine_.bus());
        runtime_ = std::make_unique<Runtime>(machine_);
        EXPECT_TRUE(runtime_->attachDevice(*nic_).ok());
        EXPECT_TRUE(runtime_->attachDevice(*gpu_).ok());
    }

    /** ODF targeting the NIC class, with host fallback. */
    std::string
    nicOdf(const std::string &bindname, const std::string &imports = "")
    {
        return "<offcode><package><bindname>" + bindname +
               "</bindname></package><sw-env>" + imports +
               "</sw-env><targets>"
               "<device-class id=\"0x0001\"/>"
               "<host-fallback/></targets></offcode>";
    }

    exec::SimExecutor sim_;
    hw::Machine machine_;
    net::Network net_;
    net::NodeId nicNode_ = 0;
    std::unique_ptr<dev::ProgrammableNic> nic_;
    std::unique_ptr<dev::Gpu> gpu_;
    std::unique_ptr<Runtime> runtime_;
};

TEST_F(RuntimeFixture, PseudoOffcodesPreDeployed)
{
    for (const char *name :
         {"hydra.Runtime", "hydra.Heap", "hydra.ChannelExecutive"}) {
        auto handle = runtime_->getOffcode(name);
        ASSERT_TRUE(handle.ok()) << name;
        EXPECT_TRUE(handle.value().site->isHost());
        EXPECT_EQ(handle.value().offcode->state(), OffcodeState::Started);
    }
}

TEST_F(RuntimeFixture, DuplicateDeviceRejected)
{
    Status again = runtime_->attachDevice(*nic_);
    EXPECT_FALSE(again);
    EXPECT_EQ(again.code(), ErrorCode::AlreadyExists);
}

TEST_F(RuntimeFixture, SiteLookupByName)
{
    EXPECT_NE(runtime_->siteByName("host"), nullptr);
    EXPECT_NE(runtime_->siteByName("nic"), nullptr);
    EXPECT_NE(runtime_->siteByName("gpu"), nullptr);
    EXPECT_EQ(runtime_->siteByName("flux-capacitor"), nullptr);
}

TEST_F(RuntimeFixture, DeploysToMatchingDevice)
{
    runtime_->depot().registerOffcode(nicOdf("test.NetThing"), []() {
        return std::make_unique<NullOffcode>("test.NetThing");
    });

    bool done = false;
    runtime_->createOffcode("test.NetThing",
                            [&](Result<OffcodeHandle> handle) {
                                ASSERT_TRUE(handle.ok())
                                    << handle.error().describe();
                                EXPECT_FALSE(handle.value().site->isHost());
                                EXPECT_EQ(handle.value().deviceAddr(),
                                          "nic");
                                done = true;
                            });
    sim_.runToCompletion();
    EXPECT_TRUE(done);
    EXPECT_EQ(runtime_->stats().offloadedCount, 1u);
    EXPECT_EQ(runtime_->stats().deploymentsCompleted, 1u);

    // Device memory was consumed by the loader.
    EXPECT_GT(nic_->localMemoryUsed(), 0u);
}

TEST_F(RuntimeFixture, DeploymentTakesSimulatedTime)
{
    runtime_->depot().registerOffcode(nicOdf("test.Slow"), []() {
        return std::make_unique<NullOffcode>("test.Slow");
    });
    bool done = false;
    runtime_->createOffcode("test.Slow",
                            [&](Result<OffcodeHandle>) { done = true; });
    EXPECT_FALSE(done); // asynchronous: allocate RTT + link + DMA
    sim_.runToCompletion();
    EXPECT_TRUE(done);
    EXPECT_GT(sim_.now(), 0u);
}

TEST_F(RuntimeFixture, ImportsDeployedAndStartedBeforeRoot)
{
    /** Offcode recording the start order. */
    class OrderedOffcode : public Offcode
    {
      public:
        OrderedOffcode(std::string name, std::vector<std::string> *order)
            : Offcode(std::move(name)), order_(order)
        {
        }

      protected:
        Status
        start() override
        {
            order_->push_back(bindname());
            return Status::success();
        }

      private:
        std::vector<std::string> *order_;
    };

    auto order = std::make_shared<std::vector<std::string>>();
    runtime_->depot().registerOffcode(
        nicOdf("test.Root", importOf("test.Dep", "Gang")),
        [order]() {
            return std::make_unique<OrderedOffcode>("test.Root",
                                                    order.get());
        });
    runtime_->depot().registerOffcode(
        nicOdf("test.Dep"), [order]() {
            return std::make_unique<OrderedOffcode>("test.Dep",
                                                    order.get());
        });

    bool done = false;
    runtime_->createOffcode("test.Root",
                            [&](Result<OffcodeHandle> handle) {
                                ASSERT_TRUE(handle.ok());
                                done = true;
                            });
    sim_.runToCompletion();
    ASSERT_TRUE(done);
    ASSERT_EQ(order->size(), 2u);
    EXPECT_EQ((*order)[0], "test.Dep");
    EXPECT_EQ((*order)[1], "test.Root");
}

TEST_F(RuntimeFixture, AlreadyDeployedOffcodeReused)
{
    runtime_->depot().registerOffcode(nicOdf("test.Shared"), []() {
        return std::make_unique<NullOffcode>("test.Shared");
    });
    runtime_->depot().registerOffcode(
        nicOdf("test.User", importOf("test.Shared", "Link")), []() {
            return std::make_unique<NullOffcode>("test.User");
        });

    runtime_->createOffcode("test.Shared", [](Result<OffcodeHandle>) {});
    sim_.runToCompletion();
    const auto deployedBefore = runtime_->stats().offcodesDeployed;

    bool done = false;
    runtime_->createOffcode("test.User",
                            [&](Result<OffcodeHandle>) { done = true; });
    sim_.runToCompletion();
    ASSERT_TRUE(done);
    // Only test.User is new; test.Shared was reused.
    EXPECT_EQ(runtime_->stats().offcodesDeployed, deployedBefore + 1);
}

TEST_F(RuntimeFixture, UnknownReferenceFailsDeployment)
{
    bool failed = false;
    runtime_->createOffcode("no.such.thing",
                            [&](Result<OffcodeHandle> handle) {
                                failed = !handle.ok();
                            });
    sim_.runToCompletion();
    EXPECT_TRUE(failed);
    EXPECT_EQ(runtime_->stats().deploymentsFailed, 1u);
}

TEST_F(RuntimeFixture, DeviceMemoryExhaustionFailsDeployment)
{
    // An image bigger than the NIC's local memory, no host fallback.
    const std::string odf =
        "<offcode><package><bindname>test.Huge</bindname></package>"
        "<targets><device-class id=\"0x0001\"/></targets></offcode>";
    runtime_->depot().registerOffcode(
        odf,
        []() { return std::make_unique<NullOffcode>("test.Huge"); },
        /*image_bytes=*/64 * 1024 * 1024);

    bool failed = false;
    runtime_->createOffcode("test.Huge",
                            [&](Result<OffcodeHandle> handle) {
                                failed = !handle.ok();
                            });
    sim_.runToCompletion();
    EXPECT_TRUE(failed);
}

TEST_F(RuntimeFixture, InvokeAsyncThroughOobChannel)
{
    auto handle = runtime_->getOffcode("hydra.Runtime");
    ASSERT_TRUE(handle.ok());

    Bytes args;
    ByteWriter writer(args);
    writer.writeString("hydra.Heap");

    Bytes reply;
    ASSERT_TRUE(runtime_
                    ->invokeAsync("hydra.Runtime", "GetOffcode", args,
                                  [&](Result<Bytes> r) {
                                      ASSERT_TRUE(r.ok())
                                          << r.error().describe();
                                      reply = r.value();
                                  })
                    .ok());
    sim_.runToCompletion();

    ByteReader reader(reply);
    EXPECT_EQ(reader.readU64().value(),
              Guid::fromName("hydra.Heap").value());
}

TEST_F(RuntimeFixture, HeapPseudoOffcodeAllocates)
{
    Bytes args;
    ByteWriter writer(args);
    writer.writeU64(4096);

    bool got = false;
    runtime_->invokeAsync("hydra.Heap", "Allocate", args,
                          [&](Result<Bytes> r) {
                              ASSERT_TRUE(r.ok());
                              ByteReader reader(r.value());
                              EXPECT_GT(reader.readU64().value(), 0u);
                              got = true;
                          });
    sim_.runToCompletion();
    EXPECT_TRUE(got);
}

TEST_F(RuntimeFixture, DestroyOffcodeReleasesDeviceMemory)
{
    runtime_->depot().registerOffcode(nicOdf("test.Gone"), []() {
        return std::make_unique<NullOffcode>("test.Gone");
    });
    runtime_->createOffcode("test.Gone", [](Result<OffcodeHandle>) {});
    sim_.runToCompletion();

    const auto used = nic_->localMemoryUsed();
    ASSERT_GT(used, 0u);
    ASSERT_TRUE(runtime_->destroyOffcode("test.Gone").ok());
    EXPECT_LT(nic_->localMemoryUsed(), used);
    EXPECT_FALSE(runtime_->getOffcode("test.Gone").ok());
    EXPECT_FALSE(runtime_->destroyOffcode("test.Gone").ok());
}

TEST_F(RuntimeFixture, GroupDeploymentSharesCommonOffcodes)
{
    // Two applications both import test.Common (paper §5: the same
    // Offcode reused in several applications). Joint deployment
    // instantiates it once and resolves the union graph with one
    // solve.
    runtime_->depot().registerOffcode(nicOdf("test.Common"), []() {
        return std::make_unique<NullOffcode>("test.Common");
    });
    runtime_->depot().registerOffcode(
        nicOdf("test.AppA", importOf("test.Common", "Gang")), []() {
            return std::make_unique<NullOffcode>("test.AppA");
        });
    runtime_->depot().registerOffcode(
        nicOdf("test.AppB", importOf("test.Common", "Gang")), []() {
            return std::make_unique<NullOffcode>("test.AppB");
        });

    std::vector<OffcodeHandle> handles;
    bool failed = false;
    runtime_->createOffcodeGroup(
        {"test.AppA", "test.AppB"},
        [&](Result<std::vector<OffcodeHandle>> result) {
            if (!result) {
                failed = true;
                return;
            }
            handles = result.value();
        });
    sim_.runToCompletion();

    ASSERT_FALSE(failed);
    ASSERT_EQ(handles.size(), 2u);
    EXPECT_EQ(handles[0].offcode->bindname(), "test.AppA");
    EXPECT_EQ(handles[1].offcode->bindname(), "test.AppB");

    // Three deployments total: A, B, and exactly one Common.
    EXPECT_EQ(runtime_->stats().offcodesDeployed, 3u);
    auto common = runtime_->getOffcode("test.Common");
    ASSERT_TRUE(common.ok());
    EXPECT_EQ(common.value().offcode->state(), OffcodeState::Started);
}

TEST_F(RuntimeFixture, GroupDeploymentFailsOnUnknownRoot)
{
    runtime_->depot().registerOffcode(nicOdf("test.Known"), []() {
        return std::make_unique<NullOffcode>("test.Known");
    });
    bool failed = false;
    runtime_->createOffcodeGroup(
        {"test.Known", "test.Unknown"},
        [&](Result<std::vector<OffcodeHandle>> result) {
            failed = !result.ok();
        });
    sim_.runToCompletion();
    EXPECT_TRUE(failed);
}

TEST_F(RuntimeFixture, GreedyResolverAlsoDeploys)
{
    core::RuntimeConfig config;
    config.resolver.useGreedy = true;
    Runtime greedy(machine_, config);

    // Fresh devices (a device can only attach to one runtime's
    // bookkeeping in this test).
    dev::Gpu gpu2(sim_, machine_.bus(),
                  [] {
                      auto c = dev::Gpu::gpuDefaultConfig();
                      c.name = "gpu2";
                      return c;
                  }());
    ASSERT_TRUE(greedy.attachDevice(gpu2).ok());

    const std::string odf =
        "<offcode><package><bindname>test.G</bindname></package>"
        "<targets><device-class id=\"0x0003\"/>"
        "<host-fallback/></targets></offcode>";
    greedy.depot().registerOffcode(odf, []() {
        return std::make_unique<NullOffcode>("test.G");
    });

    bool done = false;
    greedy.createOffcode("test.G", [&](Result<OffcodeHandle> handle) {
        ASSERT_TRUE(handle.ok());
        EXPECT_EQ(handle.value().deviceAddr(), "gpu2");
        done = true;
    });
    sim_.runToCompletion();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace hydra::core
