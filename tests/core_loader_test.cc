/**
 * @file
 * Focused tests for the loading pipeline (paper §4.2), Offcode
 * lifecycle edge cases, and Channel Executive provider selection
 * with instrumented fake providers.
 */

#include <gtest/gtest.h>

#include "core/loader.hh"
#include "core/runtime.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

namespace hydra::core {
namespace {

class NullOffcode : public Offcode
{
  public:
    explicit NullOffcode(std::string name) : Offcode(std::move(name)) {}
};

DepotEntry
makeEntry(const std::string &bindname, std::size_t image_bytes)
{
    DepotEntry entry;
    auto manifest = odf::OdfDocument::parse(
        "<offcode><package><bindname>" + bindname +
        "</bindname></package>"
        "<targets><device-class id=\"0x0001\"/>"
        "<host-fallback/></targets></offcode>");
    entry.manifest = manifest.value();
    entry.factory = [bindname]() {
        return std::make_unique<NullOffcode>(bindname);
    };
    entry.imageBytes = image_bytes;
    return entry;
}

class LoaderFixture : public ::testing::Test
{
  protected:
    LoaderFixture()
        : machine_(sim_, hw::MachineConfig{}),
          net_(sim_, net::NetworkConfig{}),
          nic_(sim_, machine_.bus(), net_, net_.addNode("nic"))
    {
    }

    exec::SimExecutor sim_;
    hw::Machine machine_;
    net::Network net_;
    dev::ProgrammableNic nic_;
};

TEST_F(LoaderFixture, HostLoaderChargesLinkCycles)
{
    HostLoader loader(machine_);
    const DepotEntry entry = makeEntry("x", 128 * 1024);
    const auto busyBefore = machine_.cpu().busyTime();
    bool done = false;
    loader.load(entry, [&](Status s) { done = s.ok(); });
    sim_.runToCompletion();
    EXPECT_TRUE(done);
    EXPECT_GT(machine_.cpu().busyTime(), busyBefore);
}

TEST_F(LoaderFixture, DeviceLoaderPipelineAndAccounting)
{
    DeviceDmaLoader loader(machine_, nic_);
    const DepotEntry entry = makeEntry("y", 256 * 1024);

    const auto busBefore = machine_.bus().stats().bytesMoved;
    bool done = false;
    sim::SimTime completedAt = 0;
    loader.load(entry, [&](Status s) {
        done = s.ok();
        completedAt = sim_.now();
    });
    EXPECT_FALSE(done); // allocate RTT hasn't elapsed yet
    sim_.runToCompletion();
    ASSERT_TRUE(done);
    EXPECT_EQ(loader.imagesLoaded(), 1u);

    // The image crossed the bus.
    EXPECT_GE(machine_.bus().stats().bytesMoved - busBefore,
              entry.imageBytes);
    // Device memory holds image + runtime heap.
    EXPECT_GE(nic_.localMemoryUsed(),
              entry.imageBytes + entry.manifest.requiredMemoryBytes);
    // The pipeline takes real simulated time (allocate RTT alone is
    // 40 us).
    EXPECT_GT(completedAt, sim::microseconds(40));

    loader.unload(entry);
    EXPECT_EQ(nic_.localMemoryUsed(), 0u);
}

TEST_F(LoaderFixture, LargerImagesTakeLonger)
{
    DeviceDmaLoader loader(machine_, nic_);
    sim::SimTime small = 0, large = 0;

    loader.load(makeEntry("small", 16 * 1024),
                [&](Status) { small = sim_.now(); });
    sim_.runToCompletion();
    const sim::SimTime start = sim_.now();
    loader.load(makeEntry("large", 2 * 1024 * 1024),
                [&](Status) { large = sim_.now() - start; });
    sim_.runToCompletion();
    EXPECT_GT(large, small);
}

TEST_F(LoaderFixture, ExhaustedDeviceFailsCleanly)
{
    DeviceDmaLoader loader(machine_, nic_);
    // NIC default local memory is 16 MB.
    const DepotEntry huge = makeEntry("huge", 64 * 1024 * 1024);
    Status result = Status::success();
    bool called = false;
    loader.load(huge, [&](Status s) {
        called = true;
        result = s;
    });
    sim_.runToCompletion();
    ASSERT_TRUE(called);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.code(), ErrorCode::OutOfMemory);
    EXPECT_EQ(loader.imagesLoaded(), 0u);
}

// ------------------------------------------------ lifecycle edge cases

TEST(OffcodeLifecycleTest, FailingInitializeFaults)
{
    class Faulty : public Offcode
    {
      public:
        Faulty() : Offcode("faulty") {}

      protected:
        Status
        initialize() override
        {
            return Status(ErrorCode::DeviceFault, "nope");
        }
    };

    Faulty offcode;
    OffcodeContext ctx;
    EXPECT_FALSE(offcode.doInitialize(ctx).ok());
    EXPECT_EQ(offcode.state(), OffcodeState::Faulted);
    // A faulted Offcode cannot start.
    EXPECT_FALSE(offcode.doStart().ok());
}

TEST(OffcodeLifecycleTest, FailingStartFaults)
{
    class Faulty : public Offcode
    {
      public:
        Faulty() : Offcode("faulty") {}

      protected:
        Status
        start() override
        {
            return Status(ErrorCode::ChannelNotConnected, "peer gone");
        }
    };

    Faulty offcode;
    OffcodeContext ctx;
    ASSERT_TRUE(offcode.doInitialize(ctx).ok());
    EXPECT_FALSE(offcode.doStart().ok());
    EXPECT_EQ(offcode.state(), OffcodeState::Faulted);
}

TEST(OffcodeLifecycleTest, StopIsIdempotentAndOrdered)
{
    class Counting : public Offcode
    {
      public:
        Counting() : Offcode("counting") {}
        int stops = 0;

      protected:
        void stop() override { ++stops; }
    };

    Counting offcode;
    OffcodeContext ctx;
    offcode.doInitialize(ctx);
    offcode.doStart();
    offcode.doStop();
    offcode.doStop(); // second stop is a no-op
    EXPECT_EQ(offcode.stops, 1);
    EXPECT_EQ(offcode.state(), OffcodeState::Stopped);

    // Double initialize / double start are rejected.
    EXPECT_FALSE(offcode.doInitialize(ctx).ok());
    EXPECT_FALSE(offcode.doStart().ok());
}

// --------------------------------------- executive provider selection

/** Provider stub with a fixed advertised latency. */
class StubProvider : public ChannelProvider
{
  public:
    StubProvider(std::string name, sim::SimTime latency, bool capable,
                 exec::SimExecutor &simulator)
        : name_(std::move(name)), latency_(latency), capable_(capable),
          sim_(simulator)
    {
    }

    const std::string &name() const override { return name_; }

    bool
    canServe(const ChannelConfig &, ExecutionSite &,
             ExecutionSite *) const override
    {
        return capable_;
    }

    ChannelCost
    estimateCost(const ChannelConfig &, ExecutionSite &, ExecutionSite *,
                 std::size_t) const override
    {
        return ChannelCost{latency_, 1.0};
    }

    std::unique_ptr<Channel>
    create(const ChannelConfig &config, ExecutionSite &creator) override
    {
        ++created;
        auto provider = LocalChannelProvider(sim_);
        return provider.create(config, creator);
    }

    int created = 0;

  private:
    std::string name_;
    sim::SimTime latency_;
    bool capable_;
    exec::SimExecutor &sim_;
};

TEST(ExecutiveSelectionTest, CheapestCapableProviderWins)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    HostSite host(machine);

    ChannelExecutive executive(
        [](const std::string &) -> ExecutionSite * { return nullptr; });
    auto slow = std::make_unique<StubProvider>("slow",
                                               sim::microseconds(50),
                                               true, sim);
    auto fast = std::make_unique<StubProvider>("fast",
                                               sim::microseconds(2),
                                               true, sim);
    auto incapable = std::make_unique<StubProvider>(
        "incapable", sim::nanoseconds(1), false, sim);
    StubProvider *slowPtr = slow.get();
    StubProvider *fastPtr = fast.get();
    StubProvider *incapablePtr = incapable.get();
    executive.registerProvider(std::move(slow));
    executive.registerProvider(std::move(fast));
    executive.registerProvider(std::move(incapable));

    ChannelConfig config;
    auto channel = executive.createChannel(config, host);
    ASSERT_TRUE(channel.ok());
    EXPECT_EQ(fastPtr->created, 1);
    EXPECT_EQ(slowPtr->created, 0);
    EXPECT_EQ(incapablePtr->created, 0);
}

TEST(ExecutiveSelectionTest, NoCapableProviderFails)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    HostSite host(machine);

    ChannelExecutive executive(
        [](const std::string &) -> ExecutionSite * { return nullptr; });
    executive.registerProvider(std::make_unique<StubProvider>(
        "incapable", sim::nanoseconds(1), false, sim));

    ChannelConfig config;
    auto channel = executive.createChannel(config, host);
    ASSERT_FALSE(channel.ok());
    EXPECT_EQ(channel.error().code, ErrorCode::Unsupported);
}

} // namespace
} // namespace hydra::core
