/**
 * @file
 * Unit tests for the programmable-device models: device class
 * matching, local memory, timers, NIC receive paths, smart disk
 * backends, and the GPU decode/present path.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "dev/disk.hh"
#include "dev/gpu.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/nfs.hh"

#include "exec/sim_executor.hh"

namespace hydra::dev {
namespace {

// --------------------------------------------------- DeviceClassSpec

TEST(DeviceClassTest, EmptyRequirementMatchesAnything)
{
    DeviceClassSpec device = ProgrammableNic::nicClassSpec();
    DeviceClassSpec required; // all wildcards
    EXPECT_TRUE(device.satisfies(required));
}

TEST(DeviceClassTest, IdMustMatchWhenGiven)
{
    DeviceClassSpec device = ProgrammableNic::nicClassSpec();
    DeviceClassSpec required;
    required.id = 0x0001;
    EXPECT_TRUE(device.satisfies(required));
    required.id = 0x0002;
    EXPECT_FALSE(device.satisfies(required));
}

TEST(DeviceClassTest, OptionalFieldsFilter)
{
    DeviceClassSpec device = ProgrammableNic::nicClassSpec();
    DeviceClassSpec required;
    required.mac = "ethernet";
    EXPECT_TRUE(device.satisfies(required));
    required.vendor = "3COM";
    EXPECT_TRUE(device.satisfies(required));
    required.vendor = "Intel";
    EXPECT_FALSE(device.satisfies(required));
}

// --------------------------------------------------- Device basics

class DeviceFixture : public ::testing::Test
{
  protected:
    DeviceFixture() : machine_(sim_, hw::MachineConfig{}) {}

    exec::SimExecutor sim_;
    hw::Machine machine_;
};

TEST_F(DeviceFixture, LocalMemoryAccounting)
{
    DeviceConfig config;
    config.localMemoryBytes = 1024;
    Device dev(sim_, machine_.bus(), config, DeviceClassSpec{});

    auto first = dev.allocateLocal(600);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(dev.localMemoryFree(), 424u);

    auto second = dev.allocateLocal(600);
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, ErrorCode::OutOfMemory);

    dev.freeLocal(600);
    EXPECT_TRUE(dev.allocateLocal(600).ok());
}

TEST_F(DeviceFixture, TimerFiresAfterDelayWithBoundedNoise)
{
    DeviceConfig config;
    config.timerNoiseSigma = sim::microseconds(10);
    Device dev(sim_, machine_.bus(), config, DeviceClassSpec{});

    SampleSet lateness;
    int remaining = 200;
    std::function<void()> arm = [&]() {
        if (remaining-- == 0)
            return;
        const sim::SimTime asked = sim_.now() + sim::milliseconds(5);
        dev.timerAfter(sim::milliseconds(5), [&, asked]() {
            lateness.add(sim::toMicroseconds(sim_.now() - asked));
            arm();
        });
    };
    arm();
    sim_.runToCompletion();

    ASSERT_EQ(lateness.count(), 200u);
    EXPECT_GE(lateness.min(), 0.0);
    // Microsecond-class precision — nothing like the host's 1 ms tick.
    EXPECT_LT(lateness.mean(), 50.0);
}

TEST_F(DeviceFixture, FirmwareCyclesAccumulate)
{
    DeviceConfig config;
    config.firmwareGhz = 0.5;
    Device dev(sim_, machine_.bus(), config, DeviceClassSpec{});
    dev.runFirmware(500); // 1 us at 0.5 GHz
    EXPECT_EQ(dev.firmwareCpu().busyTime(), sim::microseconds(1));
}

TEST_F(DeviceFixture, Capabilities)
{
    Device dev(sim_, machine_.bus(), DeviceConfig{}, DeviceClassSpec{});
    EXPECT_FALSE(dev.hasCapability("magic"));
    dev.addCapability("magic");
    EXPECT_TRUE(dev.hasCapability("magic"));
}

// --------------------------------------------------- NIC

class NicFixture : public ::testing::Test
{
  protected:
    NicFixture()
        : machine_(sim_, hw::MachineConfig{}),
          net_(sim_, net::NetworkConfig{})
    {
        peer_ = net_.addNode("peer");
        nicNode_ = net_.addNode("nic");
        nic_ = std::make_unique<ProgrammableNic>(sim_, machine_.bus(),
                                                 net_, nicNode_);
    }

    net::Packet
    packetTo(net::Port port, std::size_t bytes)
    {
        net::Packet p;
        p.src = peer_;
        p.dst = nicNode_;
        p.dstPort = port;
        p.payload = Bytes(bytes, 0x11);
        return p;
    }

    exec::SimExecutor sim_;
    hw::Machine machine_;
    net::Network net_;
    net::NodeId peer_ = 0, nicNode_ = 0;
    std::unique_ptr<ProgrammableNic> nic_;
};

TEST_F(NicFixture, DevicePathAvoidsHostEntirely)
{
    int received = 0;
    nic_->bindDevicePort(80, [&](const net::Packet &) { ++received; });

    const auto hostBusy = machine_.cpu().busyTime();
    const auto busTransactions = machine_.bus().stats().transactions;

    net_.send(packetTo(80, 1024));
    sim_.runToCompletion();

    EXPECT_EQ(received, 1);
    EXPECT_EQ(nic_->packetsToDevice(), 1u);
    EXPECT_EQ(machine_.cpu().busyTime(), hostBusy);
    EXPECT_EQ(machine_.bus().stats().transactions, busTransactions);
}

TEST_F(NicFixture, HostPathCrossesBusAndInterrupts)
{
    const hw::Addr buffer = machine_.os().allocRegion(2048);
    int received = 0;
    nic_->bindHostPort(80, machine_.os(), buffer,
                       [&](const net::Packet &) { ++received; });

    const auto hostBusy = machine_.cpu().busyTime();
    net_.send(packetTo(80, 1024));
    sim_.runToCompletion();

    EXPECT_EQ(received, 1);
    EXPECT_EQ(nic_->packetsToHost(), 1u);
    EXPECT_GT(machine_.cpu().busyTime(), hostBusy); // interrupt cost
    EXPECT_EQ(machine_.bus().stats().transactions, 1u); // one DMA
}

TEST_F(NicFixture, SendFromDeviceReachesWire)
{
    int received = 0;
    net_.bind(peer_, 90, [&](const net::Packet &p) {
        ++received;
        EXPECT_EQ(p.src, nicNode_);
    });
    net::Packet p;
    p.dst = peer_;
    p.dstPort = 90;
    p.payload = Bytes(100, 1);
    nic_->sendFromDevice(std::move(p));
    sim_.runToCompletion();
    EXPECT_EQ(received, 1);
    EXPECT_EQ(nic_->packetsSent(), 1u);
}

TEST_F(NicFixture, SendFromHostCrossesBusFirst)
{
    int received = 0;
    net_.bind(peer_, 90, [&](const net::Packet &) { ++received; });
    net::Packet p;
    p.dst = peer_;
    p.dstPort = 90;
    p.payload = Bytes(1024, 1);
    nic_->sendFromHost(std::move(p), 0x1000);
    sim_.runToCompletion();
    EXPECT_EQ(received, 1);
    EXPECT_EQ(machine_.bus().stats().transactions, 1u);
}

TEST_F(NicFixture, UnbindStopsDelivery)
{
    int received = 0;
    nic_->bindDevicePort(80, [&](const net::Packet &) { ++received; });
    nic_->unbindPort(80);
    net_.send(packetTo(80, 64));
    sim_.runToCompletion();
    EXPECT_EQ(received, 0);
}

// --------------------------------------------------- SmartDisk

class DiskFixture : public ::testing::Test
{
  protected:
    DiskFixture() : machine_(sim_, hw::MachineConfig{}) {}

    exec::SimExecutor sim_;
    hw::Machine machine_;
};

TEST_F(DiskFixture, LocalWriteReadRoundTrip)
{
    SmartDisk disk(sim_, machine_.bus());
    const std::size_t block = disk.diskConfig().blockBytes;

    Bytes data(block * 2);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);

    bool wrote = false;
    disk.writeBlocks(5, data, [&](Status s) { wrote = s.ok(); });
    sim_.runToCompletion();
    ASSERT_TRUE(wrote);

    Bytes readBack;
    disk.readBlocks(5, 2, [&](Result<Bytes> r) {
        ASSERT_TRUE(r.ok());
        readBack = r.value();
    });
    sim_.runToCompletion();
    EXPECT_EQ(readBack, data);
    EXPECT_EQ(disk.blocksWritten(), 2u);
    EXPECT_EQ(disk.blocksRead(), 2u);
}

TEST_F(DiskFixture, UnwrittenBlocksReadAsZero)
{
    SmartDisk disk(sim_, machine_.bus());
    Bytes readBack;
    disk.readBlocks(100, 1, [&](Result<Bytes> r) {
        readBack = r.value();
    });
    sim_.runToCompletion();
    EXPECT_EQ(readBack, Bytes(disk.diskConfig().blockBytes, 0));
}

TEST_F(DiskFixture, RejectsPartialBlockWrite)
{
    SmartDisk disk(sim_, machine_.bus());
    Status result = Status::success();
    disk.writeBlocks(0, Bytes(100, 1), [&](Status s) { result = s; });
    EXPECT_FALSE(result);
    EXPECT_EQ(result.code(), ErrorCode::InvalidArgument);
}

TEST_F(DiskFixture, RejectsOutOfCapacity)
{
    DiskConfig small;
    small.capacityBlocks = 4;
    SmartDisk disk(sim_, machine_.bus(), SmartDisk::diskDefaultConfig(),
                   small);
    bool failed = false;
    disk.readBlocks(3, 2, [&](Result<Bytes> r) { failed = !r.ok(); });
    EXPECT_TRUE(failed);
}

TEST_F(DiskFixture, NfsBackedPersistsToNas)
{
    net::Network net(sim_, net::NetworkConfig{});
    const net::NodeId nasNode = net.addNode("nas");
    const net::NodeId diskNode = net.addNode("disk");
    net::NfsServer nas(net, nasNode);

    SmartDisk disk(sim_, machine_.bus(), net, diskNode, nasNode);
    const std::size_t block = disk.diskConfig().blockBytes;

    Bytes data(block, 0xcd);
    bool wrote = false;
    disk.writeBlocks(2, data, [&](Status s) { wrote = s.ok(); });
    sim_.runToCompletion();
    ASSERT_TRUE(wrote);

    // The backing NAS file holds the blocks at lba*block offsets.
    ASSERT_TRUE(nas.hasFile("smartdisk.img"));

    Bytes readBack;
    disk.readBlocks(2, 1, [&](Result<Bytes> r) { readBack = r.value(); });
    sim_.runToCompletion();
    EXPECT_EQ(readBack, data);
}

// --------------------------------------------------- Gpu

TEST_F(DiskFixture, GpuPresentAndAcceleratedDecode)
{
    Gpu gpu(sim_, machine_.bus());
    EXPECT_TRUE(gpu.hasCapability("mpeg-decode"));
    EXPECT_TRUE(gpu.hasCapability("framebuffer"));

    Bytes frame(1000, 3);
    gpu.presentFrame(frame);
    EXPECT_EQ(gpu.framesPresented(), 1u);
    EXPECT_EQ(gpu.lastFrame(), frame);

    // Accelerated decode is far cheaper than the software path.
    const auto before = gpu.firmwareCpu().busyTime();
    gpu.acceleratedDecode(100000);
    const auto accel = gpu.firmwareCpu().busyTime() - before;
    const double softwareCycles =
        gpu.gpuConfig().softwareDecodeCyclesPerByte * 100000;
    const auto software = sim::cyclesToTime(
        static_cast<std::uint64_t>(softwareCycles), 2.4);
    EXPECT_LT(accel, software);
}

} // namespace
} // namespace hydra::dev
