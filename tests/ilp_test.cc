/**
 * @file
 * Tests for the Section 5 ILP machinery: the 0/1 branch-and-bound
 * solver, the layout formulation (Eqs. 1-4), the two objectives, and
 * randomized property sweeps comparing the exact solver against both
 * brute force and the greedy baseline.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ilp/layout.hh"
#include "ilp/model.hh"
#include "ilp/solver.hh"

namespace hydra::ilp {
namespace {

// ---------------------------------------------------------------- Solver

TEST(SolverTest, UnconstrainedMaximizeSetsPositiveVars)
{
    Model model;
    const VarId x = model.addBinaryVar("x");
    const VarId y = model.addBinaryVar("y");
    LinearExpr obj;
    obj.add(3.0, x).add(-2.0, y);
    model.setObjective(obj, Sense::Maximize);

    auto solution = Solver().solve(model);
    ASSERT_TRUE(solution.ok());
    EXPECT_EQ(solution.value().values[x], 1);
    EXPECT_EQ(solution.value().values[y], 0);
    EXPECT_DOUBLE_EQ(solution.value().objective, 3.0);
    EXPECT_TRUE(solution.value().proven);
}

TEST(SolverTest, MinimizeNegatesCorrectly)
{
    Model model;
    const VarId x = model.addBinaryVar("x");
    LinearExpr constraint;
    constraint.add(1.0, x);
    model.addConstraint(constraint, Relation::Ge, 1.0); // force x = 1
    LinearExpr obj;
    obj.add(5.0, x);
    model.setObjective(obj, Sense::Minimize);

    auto solution = Solver().solve(model);
    ASSERT_TRUE(solution.ok());
    EXPECT_EQ(solution.value().values[x], 1);
    EXPECT_DOUBLE_EQ(solution.value().objective, 5.0);
}

TEST(SolverTest, EqualityConstraintBinds)
{
    Model model;
    std::vector<VarId> vars;
    LinearExpr sum;
    for (int i = 0; i < 5; ++i) {
        vars.push_back(model.addBinaryVar("v" + std::to_string(i)));
        sum.add(1.0, vars.back());
    }
    model.addConstraint(sum, Relation::Eq, 2.0);
    LinearExpr obj;
    for (const VarId v : vars)
        obj.add(1.0, v);
    model.setObjective(obj, Sense::Maximize);

    auto solution = Solver().solve(model);
    ASSERT_TRUE(solution.ok());
    EXPECT_DOUBLE_EQ(solution.value().objective, 2.0);
    EXPECT_TRUE(satisfies(model, solution.value().values));
}

TEST(SolverTest, InfeasibleDetected)
{
    Model model;
    const VarId x = model.addBinaryVar("x");
    LinearExpr a;
    a.add(1.0, x);
    model.addConstraint(a, Relation::Ge, 1.0);
    LinearExpr b;
    b.add(1.0, x);
    model.addConstraint(b, Relation::Le, 0.0);

    auto solution = Solver().solve(model);
    ASSERT_FALSE(solution.ok());
    EXPECT_EQ(solution.error().code, ErrorCode::Infeasible);
}

TEST(SolverTest, KnapsackOptimal)
{
    // Classic: weights {2,3,4,5}, values {3,4,5,6}, capacity 5.
    // Optimum: items 0+1 (weight 5, value 7).
    Model model;
    const double weights[] = {2, 3, 4, 5};
    const double values[] = {3, 4, 5, 6};
    LinearExpr weight, value;
    std::vector<VarId> vars;
    for (int i = 0; i < 4; ++i) {
        vars.push_back(model.addBinaryVar("item" + std::to_string(i)));
        weight.add(weights[i], vars.back());
        value.add(values[i], vars.back());
    }
    model.addConstraint(weight, Relation::Le, 5.0);
    model.setObjective(value, Sense::Maximize);

    auto solution = Solver().solve(model);
    ASSERT_TRUE(solution.ok());
    EXPECT_DOUBLE_EQ(solution.value().objective, 7.0);
    EXPECT_EQ(solution.value().values[0], 1);
    EXPECT_EQ(solution.value().values[1], 1);
}

TEST(SolverTest, NodeLimitReported)
{
    // A model that needs search but gets a 1-node budget.
    Model model;
    LinearExpr sum;
    for (int i = 0; i < 20; ++i) {
        const VarId v = model.addBinaryVar("v");
        sum.add(1.0, v);
    }
    model.addConstraint(sum, Relation::Eq, 10.0);
    model.setObjective(sum, Sense::Maximize);

    SolverLimits limits;
    limits.maxNodes = 1;
    auto solution = Solver(limits).solve(model);
    ASSERT_FALSE(solution.ok());
    EXPECT_EQ(solution.error().code, ErrorCode::SolverLimitReached);
}

/** Brute-force reference for cross-checking on small instances. */
double
bruteForceBest(const Model &model, bool &feasible)
{
    const std::size_t n = model.numVars();
    double best = -1e300;
    feasible = false;
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
        std::vector<std::int8_t> values(n, 0);
        for (std::size_t i = 0; i < n; ++i)
            values[i] = (mask >> i) & 1;
        if (!satisfies(model, values))
            continue;
        const double obj = model.objective().evaluate(values);
        if (!feasible || obj > best)
            best = obj;
        feasible = true;
    }
    return best;
}

/** Property sweep: solver matches brute force on random models. */
class SolverPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SolverPropertyTest, MatchesBruteForce)
{
    Rng rng(GetParam());
    Model model;
    const std::size_t n = 3 + rng.uniformInt(0, 7); // 3..10 vars
    std::vector<VarId> vars;
    for (std::size_t i = 0; i < n; ++i)
        vars.push_back(model.addBinaryVar("v" + std::to_string(i)));

    const std::size_t numConstraints = rng.uniformInt(1, 4);
    for (std::size_t c = 0; c < numConstraints; ++c) {
        LinearExpr expr;
        for (const VarId v : vars)
            if (rng.chance(0.6))
                expr.add(rng.uniformInt(-3, 3), v);
        const Relation rel = static_cast<Relation>(rng.uniformInt(0, 2));
        model.addConstraint(expr, rel, rng.uniformInt(-2, 4));
    }

    LinearExpr obj;
    for (const VarId v : vars)
        obj.add(rng.uniformInt(-5, 5), v);
    model.setObjective(obj, Sense::Maximize);

    bool feasible = false;
    const double reference = bruteForceBest(model, feasible);
    auto solution = Solver().solve(model);

    if (!feasible) {
        ASSERT_FALSE(solution.ok());
        EXPECT_EQ(solution.error().code, ErrorCode::Infeasible);
    } else {
        ASSERT_TRUE(solution.ok());
        EXPECT_TRUE(satisfies(model, solution.value().values));
        EXPECT_NEAR(solution.value().objective, reference, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, SolverPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------- Layout

LayoutSpec
basicSpec(std::size_t offcodes, std::size_t devices)
{
    LayoutSpec spec;
    spec.numOffcodes = offcodes;
    spec.numDevices = devices;
    spec.compatible.assign(offcodes,
                           std::vector<bool>(devices, true));
    return spec;
}

TEST(LayoutTest, MaximizeOffloadingOffloadsEverything)
{
    LayoutSpec spec = basicSpec(4, 3);
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    EXPECT_EQ(assignment.value().offloadedCount(), 4u);
    EXPECT_DOUBLE_EQ(assignment.value().objective, 4.0);
}

TEST(LayoutTest, HostOnlyOffcodeStaysHome)
{
    LayoutSpec spec = basicSpec(2, 3);
    spec.compatible[0] = {true, false, false};
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    EXPECT_EQ(assignment.value().device[0], 0u);
    EXPECT_NE(assignment.value().device[1], 0u);
}

TEST(LayoutTest, PullForcesSameDevice)
{
    LayoutSpec spec = basicSpec(2, 4);
    spec.edges.push_back({0, 1, LayoutConstraint::Pull});
    // Offcode 0 only runs on device 2; Pull must drag 1 there too.
    spec.compatible[0] = {false, false, true, false};
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    EXPECT_EQ(assignment.value().device[0], 2u);
    EXPECT_EQ(assignment.value().device[1], 2u);
}

TEST(LayoutTest, PullInfeasibleWhenNoCommonDevice)
{
    LayoutSpec spec = basicSpec(2, 3);
    spec.edges.push_back({0, 1, LayoutConstraint::Pull});
    spec.compatible[0] = {false, true, false};
    spec.compatible[1] = {false, false, true};
    auto assignment = solveLayout(spec);
    ASSERT_FALSE(assignment.ok());
    EXPECT_EQ(assignment.error().code, ErrorCode::Infeasible);
}

TEST(LayoutTest, GangBindsOffloadDecisionNotPlacement)
{
    LayoutSpec spec = basicSpec(2, 3);
    spec.edges.push_back({0, 1, LayoutConstraint::Gang});
    // Offcode 0 can only run on device 1, offcode 1 only on device 2;
    // both can fall back to host. Gang allows different devices.
    spec.compatible[0] = {true, true, false};
    spec.compatible[1] = {true, false, true};
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    EXPECT_EQ(assignment.value().device[0], 1u);
    EXPECT_EQ(assignment.value().device[1], 2u);
}

TEST(LayoutTest, GangDragsPartnerToHost)
{
    LayoutSpec spec = basicSpec(2, 2);
    spec.edges.push_back({0, 1, LayoutConstraint::Gang});
    spec.compatible[0] = {true, false}; // host only
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    // 0 must stay home, so Gang keeps 1 home too.
    EXPECT_EQ(assignment.value().device[1], 0u);
}

TEST(LayoutTest, AsymmetricGangOneDirection)
{
    // AsymGang(a->b): offloading a requires offloading b, not vice
    // versa. Make b host-only: then a must stay home as well.
    LayoutSpec spec = basicSpec(2, 2);
    spec.edges.push_back({0, 1, LayoutConstraint::AsymGang});
    spec.compatible[1] = {true, false};
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    EXPECT_EQ(assignment.value().device[0], 0u);

    // Reverse: a host-only leaves b free to offload.
    LayoutSpec spec2 = basicSpec(2, 2);
    spec2.edges.push_back({0, 1, LayoutConstraint::AsymGang});
    spec2.compatible[0] = {true, false};
    auto assignment2 = solveLayout(spec2);
    ASSERT_TRUE(assignment2.ok());
    EXPECT_EQ(assignment2.value().device[1], 1u);
}

TEST(LayoutTest, MemoryCapacityLimitsPlacement)
{
    LayoutSpec spec = basicSpec(3, 2);
    spec.memoryDemand = {600, 600, 600};
    spec.memoryLimit = {0, 1000}; // device 1 fits only one offcode
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    EXPECT_EQ(assignment.value().offloadedCount(), 1u);
}

TEST(LayoutTest, BusObjectivePicksPriciestUnderCapacity)
{
    LayoutSpec spec = basicSpec(3, 2);
    spec.objective = LayoutObjective::MaximizeBusUsage;
    spec.busPrice = {0.9, 0.5, 0.45};
    spec.linkCapacity = {0, 1.0};
    auto assignment = solveLayout(spec);
    ASSERT_TRUE(assignment.ok());
    // Best packing under capacity 1.0: {0.5, 0.45} = 0.95 > 0.9.
    EXPECT_NEAR(assignment.value().objective, 0.95, 1e-9);
    EXPECT_EQ(assignment.value().device[0], 0u);
}

TEST(LayoutTest, NoCompatibleDeviceErrors)
{
    LayoutSpec spec = basicSpec(1, 2);
    spec.compatible[0] = {false, false};
    auto model = buildLayoutModel(spec);
    ASSERT_FALSE(model.ok());
    EXPECT_EQ(model.error().code, ErrorCode::DeviceIncompatible);
}

TEST(LayoutTest, ValidateRejectsBadAssignments)
{
    LayoutSpec spec = basicSpec(2, 2);
    spec.edges.push_back({0, 1, LayoutConstraint::Pull});
    EXPECT_FALSE(validateAssignment(spec, {0, 1}).ok());
    EXPECT_TRUE(validateAssignment(spec, {1, 1}).ok());
    EXPECT_FALSE(validateAssignment(spec, {0}).ok());   // size
    EXPECT_FALSE(validateAssignment(spec, {0, 5}).ok()); // range
}

// ---------------------------------------------------------------- Greedy

TEST(GreedyTest, FeasibleOnSimpleSpec)
{
    LayoutSpec spec = basicSpec(4, 3);
    spec.edges.push_back({0, 1, LayoutConstraint::Pull});
    spec.edges.push_back({2, 3, LayoutConstraint::Gang});
    auto assignment = greedyLayout(spec);
    ASSERT_TRUE(assignment.ok());
    EXPECT_TRUE(
        validateAssignment(spec, assignment.value().device).ok());
}

TEST(GreedyTest, NeverBeatsExactSolver)
{
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 3 + rng.uniformInt(0, 5);
        const std::size_t k = 2 + rng.uniformInt(0, 2);
        LayoutSpec spec = basicSpec(n, k);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t d = 1; d < k; ++d)
                spec.compatible[i][d] = rng.chance(0.7);
        for (std::size_t e = 0; e < n / 2; ++e) {
            LayoutEdge edge;
            edge.a = rng.uniformInt(0, static_cast<std::int64_t>(n) - 1);
            edge.b = rng.uniformInt(0, static_cast<std::int64_t>(n) - 1);
            if (edge.a == edge.b)
                continue;
            edge.kind = static_cast<LayoutConstraint>(rng.uniformInt(0, 2));
            spec.edges.push_back(edge);
        }

        auto exact = solveLayout(spec);
        auto greedy = greedyLayout(spec);
        if (!exact.ok())
            continue; // infeasible either way
        ASSERT_TRUE(validateAssignment(spec, exact.value().device).ok());
        if (greedy.ok()) {
            EXPECT_LE(greedy.value().objective,
                      exact.value().objective + 1e-9)
                << "trial " << trial;
        }
    }
}

TEST(GreedyTest, SuboptimalOnContendedInstance)
{
    // The paper: "for complex scenarios a greedy solution is not
    // always optimal." Greedy (index order, first fit) packs offcode
    // 0 (price 0.9) first and then cannot fit 1 and 2 (0.5 + 0.45),
    // which the exact solver prefers.
    LayoutSpec spec = basicSpec(3, 2);
    spec.objective = LayoutObjective::MaximizeBusUsage;
    spec.busPrice = {0.9, 0.5, 0.45};
    spec.linkCapacity = {0, 1.0};

    auto exact = solveLayout(spec);
    auto greedy = greedyLayout(spec);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LT(greedy.value().objective, exact.value().objective);
}

/** Property sweep: exact solver output always validates. */
class LayoutPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LayoutPropertyTest, SolverOutputSatisfiesAllConstraints)
{
    Rng rng(GetParam() * 7919);
    const std::size_t n = 2 + rng.uniformInt(0, 8);
    const std::size_t k = 2 + rng.uniformInt(0, 3);
    LayoutSpec spec = basicSpec(n, k);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 1; d < k; ++d)
            spec.compatible[i][d] = rng.chance(0.6);
    for (std::size_t e = 0; e < n; ++e) {
        if (!rng.chance(0.5))
            continue;
        LayoutEdge edge;
        edge.a = rng.uniformInt(0, static_cast<std::int64_t>(n) - 1);
        edge.b = rng.uniformInt(0, static_cast<std::int64_t>(n) - 1);
        if (edge.a == edge.b)
            continue;
        edge.kind = static_cast<LayoutConstraint>(rng.uniformInt(0, 2));
        spec.edges.push_back(edge);
    }
    spec.busPrice.assign(n, 0.0);
    for (auto &price : spec.busPrice)
        price = rng.uniform(0.05, 0.5);
    spec.linkCapacity.assign(k, 1.0);
    spec.linkCapacity[0] = 0.0;

    auto assignment = solveLayout(spec);
    if (!assignment.ok()) {
        EXPECT_EQ(assignment.error().code, ErrorCode::Infeasible);
        return;
    }
    EXPECT_TRUE(
        validateAssignment(spec, assignment.value().device).ok());
    EXPECT_NEAR(assignmentObjective(spec, assignment.value().device),
                assignment.value().objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomLayouts, LayoutPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

} // namespace
} // namespace hydra::ilp
