/**
 * @file
 * SLO watchdog: spec parsing (including rejection of malformed
 * rules), each rule kind's evaluation semantics, the monotonic-clock
 * guard, and the report/JSON surfaces.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "obs/slo.hh"
#include "sim/time.hh"

using namespace hydra;
using namespace hydra::obs;

namespace {

class SloTest : public ::testing::Test
{
  protected:
    void SetUp() override { SloEngine::instance().clear(); }
    void TearDown() override { SloEngine::instance().clear(); }
};

} // namespace

TEST_F(SloTest, RejectsMalformedSpecs)
{
    SloEngine &engine = SloEngine::instance();
    EXPECT_FALSE(engine.loadSpec("not json"));
    EXPECT_FALSE(engine.loadSpec("{}")); // no "rules"
    EXPECT_FALSE(engine.loadSpec(R"({"rules": 5})"));
    // A rule must target exactly one instrument kind.
    EXPECT_FALSE(engine.loadSpec(
        R"({"rules":[{"histogram":"a","counter":"b","max":1}]})"));
    EXPECT_FALSE(engine.loadSpec(R"({"rules":[{"max":1}]})"));
    // Percentile must be in (0, 100].
    EXPECT_FALSE(engine.loadSpec(
        R"({"rules":[{"histogram":"a","percentile":0,"max":1}]})"));
    EXPECT_FALSE(engine.loadSpec(
        R"({"rules":[{"histogram":"a","percentile":101,"max":1}]})"));
    // Histogram needs max, counter needs max_rate_per_s, gauge needs
    // at least one bound.
    EXPECT_FALSE(engine.loadSpec(R"({"rules":[{"histogram":"a"}]})"));
    EXPECT_FALSE(engine.loadSpec(R"({"rules":[{"counter":"a"}]})"));
    EXPECT_FALSE(engine.loadSpec(R"({"rules":[{"gauge":"a"}]})"));
    // Malformed display key.
    EXPECT_FALSE(engine.loadSpec(
        R"({"rules":[{"histogram":"a{bad","max":1}]})"));
    EXPECT_FALSE(engine.hasRules());
}

TEST_F(SloTest, HistogramPercentileRule)
{
    Histogram &hist =
        obs::histogram("slo.test_latency", {{"case", "p99"}});
    for (int i = 0; i < 100; ++i)
        hist.record(1000);
    hist.record(100000); // the tail sample that busts the budget

    SloEngine &engine = SloEngine::instance();
    ASSERT_TRUE(engine.loadSpec(R"({"rules":[{
        "name": "latency-budget",
        "histogram": "slo.test_latency{case=p99}",
        "percentile": 99.9,
        "max": 50000}]})"));

    const std::uint64_t before =
        MetricsRegistry::instance().counterValue(
            "obs.slo.violations", {{"rule", "latency-budget"}});
    engine.evaluate(sim::seconds(1));
    EXPECT_EQ(engine.violationsTotal(), 1u);
    EXPECT_EQ(MetricsRegistry::instance().counterValue(
                  "obs.slo.violations", {{"rule", "latency-budget"}}),
              before + 1);

    // Each advancing evaluation re-judges the rule.
    engine.evaluate(sim::seconds(2));
    EXPECT_EQ(engine.violationsTotal(), 2u);
}

TEST_F(SloTest, EmptyHistogramIsSkipped)
{
    obs::histogram("slo.test_empty", {{"case", "empty"}});
    SloEngine &engine = SloEngine::instance();
    ASSERT_TRUE(engine.loadSpec(R"({"rules":[{
        "histogram": "slo.test_empty{case=empty}",
        "max": 1}]})"));
    engine.evaluate(sim::seconds(1));
    EXPECT_EQ(engine.violationsTotal(), 0u);
}

TEST_F(SloTest, CounterRatePrimesThenFires)
{
    Counter &events = obs::counter("slo.test_events", {{"case", "rate"}});
    SloEngine &engine = SloEngine::instance();
    ASSERT_TRUE(engine.loadSpec(R"({"rules":[{
        "name": "event-rate",
        "counter": "slo.test_events{case=rate}",
        "max_rate_per_s": 10}]})"));

    // First evaluation primes the baseline, whatever the count.
    events.add(1000000);
    engine.evaluate(sim::seconds(1));
    EXPECT_EQ(engine.violationsTotal(), 0u);

    // 5 events over 1 s: under the 10/s bound.
    events.add(5);
    engine.evaluate(sim::seconds(2));
    EXPECT_EQ(engine.violationsTotal(), 0u);

    // 100 events over 1 s: over the bound.
    events.add(100);
    engine.evaluate(sim::seconds(3));
    EXPECT_EQ(engine.violationsTotal(), 1u);
}

TEST_F(SloTest, GaugeBounds)
{
    Gauge &level = obs::gauge("slo.test_level", {{"case", "bounds"}});
    SloEngine &engine = SloEngine::instance();
    ASSERT_TRUE(engine.loadSpec(R"({"rules":[{
        "name": "level-band",
        "gauge": "slo.test_level{case=bounds}",
        "min": 0.25, "max": 0.75}]})"));

    level.set(0.5);
    engine.evaluate(sim::seconds(1));
    EXPECT_EQ(engine.violationsTotal(), 0u);

    level.set(0.9); // above max
    engine.evaluate(sim::seconds(2));
    EXPECT_EQ(engine.violationsTotal(), 1u);

    level.set(0.1); // below min
    engine.evaluate(sim::seconds(3));
    EXPECT_EQ(engine.violationsTotal(), 2u);
}

TEST_F(SloTest, NonAdvancingClockIsNoop)
{
    Gauge &level = obs::gauge("slo.test_level", {{"case", "mono"}});
    level.set(1.0);
    SloEngine &engine = SloEngine::instance();
    ASSERT_TRUE(engine.loadSpec(R"({"rules":[{
        "gauge": "slo.test_level{case=mono}",
        "max": 0.5}]})"));

    engine.evaluate(sim::seconds(1));
    engine.evaluate(sim::seconds(1)); // coinciding periodics
    engine.evaluate(sim::milliseconds(500));
    EXPECT_EQ(engine.violationsTotal(), 1u);
}

TEST_F(SloTest, ReportAndJsonNameEveryRule)
{
    Gauge &level = obs::gauge("slo.test_level", {{"case", "report"}});
    level.set(0.9);
    SloEngine &engine = SloEngine::instance();
    ASSERT_TRUE(engine.loadSpec(R"({"rules":[{
        "name": "report-rule",
        "gauge": "slo.test_level{case=report}",
        "max": 0.5}]})"));
    engine.evaluate(sim::seconds(1));

    const std::string report = engine.report();
    EXPECT_NE(report.find("report-rule"), std::string::npos) << report;
    EXPECT_NE(report.find("VIOLATED"), std::string::npos) << report;

    const std::string json = engine.toJson();
    EXPECT_NE(json.find("\"report-rule\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"total_violations\":1"), std::string::npos)
        << json;
}

TEST_F(SloTest, DefaultRuleNamesAreIndexed)
{
    SloEngine &engine = SloEngine::instance();
    ASSERT_TRUE(engine.loadSpec(R"({"rules":[
        {"gauge": "slo.test_level{case=anon}", "max": 1},
        {"gauge": "slo.test_level{case=anon}", "min": 0}]})"));
    EXPECT_EQ(engine.ruleCount(), 2u);
    EXPECT_NE(engine.toJson().find("rule-0"), std::string::npos);
    EXPECT_NE(engine.toJson().find("rule-1"), std::string::npos);
}
