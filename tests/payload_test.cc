/**
 * @file
 * Unit tests for the refcounted Payload type and its buffer pool:
 * zero-copy adoption, reference counting, slices, the builder,
 * equality, and the freelist recycler's accounting.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.hh"
#include "common/payload.hh"
#include "exec/spsc_queue.hh"

namespace hydra {
namespace {

TEST(PayloadTest, DefaultIsEmpty)
{
    Payload p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.size(), 0u);
    EXPECT_EQ(p.data(), nullptr);
    EXPECT_EQ(p.refCount(), 0u);
    EXPECT_TRUE(p.slice(0, 10).empty());
    EXPECT_EQ(p, Payload());
}

TEST(PayloadTest, AdoptingBytesIsZeroCopy)
{
    Bytes bytes(100, 7);
    const std::uint8_t *raw = bytes.data();
    const auto copiesBefore = payloadPoolStats().deepCopies;

    Payload p(std::move(bytes));
    EXPECT_EQ(p.data(), raw); // same heap buffer, no copy
    EXPECT_EQ(p.size(), 100u);
    EXPECT_EQ(p.refCount(), 1u);
    EXPECT_EQ(payloadPoolStats().deepCopies, copiesBefore);
}

TEST(PayloadTest, CopyBumpsRefcountNotBytes)
{
    Payload p(Bytes(64, 1));
    const auto copiesBefore = payloadPoolStats().deepCopies;

    Payload q = p;
    EXPECT_EQ(q.data(), p.data()); // shared buffer
    EXPECT_EQ(p.refCount(), 2u);
    EXPECT_EQ(q.refCount(), 2u);
    EXPECT_EQ(payloadPoolStats().deepCopies, copiesBefore);

    { // more references come and go without touching the bytes
        Payload r = q;
        EXPECT_EQ(p.refCount(), 3u);
    }
    EXPECT_EQ(p.refCount(), 2u);
}

TEST(PayloadTest, MoveTransfersOwnership)
{
    Payload p(Bytes(16, 2));
    const std::uint8_t *raw = p.data();
    Payload q = std::move(p);
    EXPECT_EQ(q.data(), raw);
    EXPECT_EQ(q.refCount(), 1u);
    EXPECT_TRUE(p.empty()); // NOLINT: moved-from is valid and empty
    EXPECT_EQ(p.refCount(), 0u);
}

TEST(PayloadTest, ExplicitDeepCopyIsCounted)
{
    const Bytes bytes(32, 9);
    const auto before = payloadPoolStats().deepCopies;
    Payload p(bytes); // explicit ctor: deliberate copy
    EXPECT_EQ(p, bytes);
    EXPECT_NE(p.data(), bytes.data());
    EXPECT_EQ(payloadPoolStats().deepCopies, before + 1);

    const Bytes out = p.toBytes(); // materializing counts too
    EXPECT_EQ(out, bytes);
    EXPECT_EQ(payloadPoolStats().deepCopies, before + 2);
}

TEST(PayloadTest, SliceSharesTheBuffer)
{
    Bytes bytes;
    for (int i = 0; i < 20; ++i)
        bytes.push_back(static_cast<std::uint8_t>(i));
    Payload p(std::move(bytes));

    Payload mid = p.slice(5, 10);
    EXPECT_EQ(mid.size(), 10u);
    EXPECT_EQ(mid.data(), p.data() + 5); // zero-copy sub-range
    EXPECT_EQ(mid[0], 5u);
    EXPECT_EQ(p.refCount(), 2u);

    // Sub-slices compose: offsets are relative to the view.
    Payload inner = mid.slice(2, 3);
    EXPECT_EQ(inner.data(), p.data() + 7);
    EXPECT_EQ(inner.size(), 3u);
    EXPECT_EQ(p.refCount(), 3u);
}

TEST(PayloadTest, SliceClampsToBounds)
{
    Payload p(Bytes(10, 4));
    EXPECT_EQ(p.slice(8, 100).size(), 2u); // length clamped
    EXPECT_TRUE(p.slice(10, 1).empty());   // offset at end
    EXPECT_TRUE(p.slice(99, 1).empty());   // offset past end
    EXPECT_EQ(p.slice(99, 1).refCount(), 0u);
}

TEST(PayloadTest, SliceKeepsBufferAliveAfterParentDies)
{
    Payload tail;
    {
        Bytes bytes(128, 0xaa);
        bytes[120] = 0x55;
        Payload whole(std::move(bytes));
        tail = whole.slice(120, 8);
    } // `whole` released; `tail` still owns a reference
    EXPECT_EQ(tail.refCount(), 1u);
    ASSERT_EQ(tail.size(), 8u);
    EXPECT_EQ(tail[0], 0x55);
    EXPECT_EQ(tail[1], 0xaa);
}

TEST(PayloadTest, EqualityComparesContent)
{
    Payload a(Bytes{1, 2, 3});
    Payload b(Bytes{1, 2, 3});
    Payload c(Bytes{1, 2, 4});
    EXPECT_EQ(a, b); // distinct buffers, same content
    EXPECT_FALSE(a == c);
    EXPECT_EQ(a, (Bytes{1, 2, 3}));
    EXPECT_EQ((Bytes{1, 2, 3}), a);
    EXPECT_FALSE(a == Bytes({1, 2}));
}

TEST(PayloadBuilderTest, SealFreezesAccumulatedContent)
{
    PayloadBuilder builder;
    ByteWriter writer(builder.buffer());
    writer.writeU32(0xdeadbeef);
    writer.writeString("hello");
    Payload p = builder.seal();

    ByteReader reader(p.data(), p.size());
    EXPECT_EQ(reader.readU32().value(), 0xdeadbeefu);
    EXPECT_EQ(reader.readString().value(), "hello");
    EXPECT_EQ(p.refCount(), 1u);
}

TEST(PayloadBuilderTest, BuilderIsReusable)
{
    PayloadBuilder builder;
    builder.buffer().assign(4, 1);
    Payload first = builder.seal();
    builder.buffer().assign(8, 2); // fresh buffer after seal
    Payload second = builder.seal();
    EXPECT_EQ(first.size(), 4u);
    EXPECT_EQ(second.size(), 8u);
    EXPECT_NE(first.data(), second.data());
    EXPECT_EQ(first, Bytes(4, 1)); // untouched by the second build
}

TEST(PayloadPoolTest, FreelistRecyclesCapacity)
{
    payloadPoolTrim();
    const auto base = payloadPoolStats();
    EXPECT_EQ(base.freeNodes, 0u);

    {
        PayloadBuilder builder;
        builder.buffer().assign(256, 3);
        Payload p = builder.seal();
    } // last reference dropped: node goes back to the freelist
    const auto afterDrop = payloadPoolStats();
    EXPECT_EQ(afterDrop.recycles, base.recycles + 1);
    EXPECT_EQ(afterDrop.freeNodes, 1u);

    {
        PayloadBuilder builder;
        builder.buffer().assign(64, 4); // reuses the recycled node
        Payload p = builder.seal();
        const auto reused = payloadPoolStats();
        EXPECT_EQ(reused.poolHits, afterDrop.poolHits + 1);
        EXPECT_EQ(reused.allocations, afterDrop.allocations);
    }

    payloadPoolTrim();
    EXPECT_EQ(payloadPoolStats().freeNodes, 0u);
}

TEST(PayloadPoolTest, SteadyStateTrafficStopsAllocating)
{
    payloadPoolTrim();
    // Warm up: one round trip leaves pooled capacity behind.
    { Payload warm = PayloadBuilder().seal(); }
    const auto warmStats = payloadPoolStats();

    for (int i = 0; i < 100; ++i) {
        PayloadBuilder builder;
        builder.buffer().assign(1024, static_cast<std::uint8_t>(i));
        Payload p = builder.seal();
        Payload copy = p;     // refcount traffic, no pool traffic
        Payload s = p.slice(1, 10);
    }
    const auto after = payloadPoolStats();
    EXPECT_EQ(after.allocations, warmStats.allocations);
    EXPECT_EQ(after.poolHits, warmStats.poolHits + 100);
}

TEST(PayloadPoolTest, SpscSlotReleasesBufferAfterPop)
{
    // A popped ring slot must not retain a reference to the pooled
    // buffer: pop() resets the slot, so dropping the consumer's copy
    // returns the node to the freelist immediately instead of
    // waiting for the slot to be overwritten a full lap later.
    payloadPoolTrim();
    exec::SpscQueue<Payload> ring(8);
    const auto base = payloadPoolStats();

    {
        PayloadBuilder builder;
        builder.buffer().assign(512, 7);
        ASSERT_TRUE(ring.push(builder.seal()));
    }
    Payload out;
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(payloadPoolStats().recycles, base.recycles);

    out = Payload(); // last live reference — the slot holds none
    EXPECT_EQ(payloadPoolStats().recycles, base.recycles + 1);
    EXPECT_EQ(payloadPoolStats().freeNodes, 1u);
}

TEST(PayloadPoolTest, SpscBatchSlotsReleaseBuffersAfterPopBatch)
{
    payloadPoolTrim();
    exec::SpscQueue<Payload> ring(8);
    const auto base = payloadPoolStats();

    std::vector<Payload> batch;
    for (int i = 0; i < 4; ++i) {
        PayloadBuilder builder;
        builder.buffer().assign(256, static_cast<std::uint8_t>(i));
        batch.push_back(builder.seal());
    }
    ASSERT_EQ(ring.pushBatch({batch.data(), batch.size()}), 4u);
    batch.clear(); // producer copies are gone; slots hold the refs

    Payload out[4];
    ASSERT_EQ(ring.popBatch(out, 4), 4u);
    EXPECT_EQ(payloadPoolStats().recycles, base.recycles);

    for (Payload &p : out)
        p = Payload(); // consumed slots were cleared by popBatch
    EXPECT_EQ(payloadPoolStats().recycles, base.recycles + 4);
    EXPECT_EQ(payloadPoolStats().freeNodes, 4u);
}

} // namespace
} // namespace hydra
