/**
 * @file
 * Flight recorder tests (DESIGN.md §11): delta encoding, ring
 * bounds, JSON shape, the hydra.Monitor "Flight" OOB method, and the
 * headline determinism property — the same SimExecutor scenario run
 * twice produces byte-identical flight JSON.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/payload.hh"
#include "core/runtime.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "tivo/harness.hh"

using namespace hydra;
using obs::FlightConfig;
using obs::FlightRecorder;

namespace {

class FlightTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::MetricsRegistry::instance().reset();
        FlightRecorder::instance().configure(FlightConfig{});
    }
};

const json::Value *
snapshotAt(const json::Value &doc, std::size_t index)
{
    const json::Value *snapshots = doc.find("snapshots");
    if (!snapshots || !snapshots->isArray() ||
        index >= snapshots->array.size())
        return nullptr;
    return &snapshots->array[index];
}

TEST_F(FlightTest, CaptureStoresCounterDeltas)
{
    obs::Counter &c = obs::counter("test.flight.counter");
    c.add(5);
    FlightRecorder::instance().capture(1000);
    c.add(3);
    FlightRecorder::instance().capture(2000);
    FlightRecorder::instance().capture(3000); // no change: omitted

    auto doc = json::parse(FlightRecorder::instance().toJson());
    ASSERT_TRUE(doc) << doc.error().describe();

    const json::Value *first = snapshotAt(doc.value(), 0);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->find("t")->asU64(), 1000u);
    const json::Value *counters = first->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("test.flight.counter")->asU64(), 5u);

    const json::Value *second = snapshotAt(doc.value(), 1);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->find("counters")->find("test.flight.counter")
                  ->asU64(),
              3u);

    // Zero deltas are omitted entirely.
    const json::Value *third = snapshotAt(doc.value(), 2);
    ASSERT_NE(third, nullptr);
    const json::Value *thirdCounters = third->find("counters");
    EXPECT_TRUE(!thirdCounters ||
                !thirdCounters->find("test.flight.counter"));
}

TEST_F(FlightTest, HistogramSummariesOnlyWhenGrown)
{
    obs::Histogram &h = obs::histogram("test.flight.hist");
    h.record(1234);
    FlightRecorder::instance().capture(1);
    FlightRecorder::instance().capture(2); // histogram unchanged

    auto doc = json::parse(FlightRecorder::instance().toJson());
    ASSERT_TRUE(doc);
    const json::Value *first = snapshotAt(doc.value(), 0);
    ASSERT_NE(first, nullptr);
    const json::Value *hists = first->find("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Value *cell = hists->find("test.flight.hist");
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->find("n")->asU64(), 1u);
    EXPECT_EQ(cell->find("max")->asU64(), 1234u);

    const json::Value *second = snapshotAt(doc.value(), 1);
    ASSERT_NE(second, nullptr);
    const json::Value *secondHists = second->find("histograms");
    EXPECT_TRUE(!secondHists ||
                !secondHists->find("test.flight.hist"));
}

TEST_F(FlightTest, RingOverwritesOldestAndCountsDrops)
{
    FlightRecorder::instance().configure(FlightConfig{.capacity = 2});
    obs::Counter &c = obs::counter("test.flight.ring");
    for (std::uint64_t t = 1; t <= 4; ++t) {
        c.increment();
        FlightRecorder::instance().capture(t);
    }
    EXPECT_EQ(FlightRecorder::instance().size(), 2u);
    EXPECT_EQ(FlightRecorder::instance().captured(), 4u);
    EXPECT_EQ(FlightRecorder::instance().dropped(), 2u);
    EXPECT_EQ(obs::counter("obs.flight.dropped_snapshots").value(), 2u);

    // Survivors are the two newest snapshots.
    auto doc = json::parse(FlightRecorder::instance().toJson());
    ASSERT_TRUE(doc);
    EXPECT_EQ(snapshotAt(doc.value(), 0)->find("t")->asU64(), 3u);
    EXPECT_EQ(snapshotAt(doc.value(), 1)->find("t")->asU64(), 4u);
}

TEST_F(FlightTest, ToJsonTailReturnsNewestSnapshots)
{
    obs::Counter &c = obs::counter("test.flight.tail");
    for (std::uint64_t t = 1; t <= 5; ++t) {
        c.increment();
        FlightRecorder::instance().capture(t * 100);
    }
    auto doc = json::parse(FlightRecorder::instance().toJson(2));
    ASSERT_TRUE(doc);
    const json::Value *snapshots = doc.value().find("snapshots");
    ASSERT_NE(snapshots, nullptr);
    ASSERT_EQ(snapshots->array.size(), 2u);
    EXPECT_EQ(snapshots->array[0].find("t")->asU64(), 400u);
    EXPECT_EQ(snapshots->array[1].find("t")->asU64(), 500u);
}

// ----------------------------------------- end-to-end (SimExecutor)

tivo::TestbedConfig
shortScenario()
{
    tivo::TestbedConfig config;
    config.server = tivo::ServerKind::Offloaded;
    config.client = tivo::ClientKind::Offloaded;
    config.duration = sim::seconds(2);
    config.warmup = sim::seconds(1);
    config.sampleInterval = sim::milliseconds(500);
    config.flightInterval = sim::milliseconds(250);
    config.seed = 11;
    return config;
}

std::string
runAndDumpFlight()
{
    // Same starting state both runs: zeroed instruments, empty
    // payload freelist (pooled buffers survive a testbed otherwise).
    payloadPoolTrim();
    obs::MetricsRegistry::instance().reset();
    FlightRecorder::instance().configure(FlightConfig{});
    tivo::Testbed testbed(shortScenario());
    const tivo::ScenarioResult result = testbed.run();
    EXPECT_TRUE(result.deploymentOk);
    return FlightRecorder::instance().toJson();
}

TEST_F(FlightTest, SimExecutorFlightJsonIsDeterministic)
{
    const std::string first = runAndDumpFlight();
    const std::string second = runAndDumpFlight();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second) << "flight JSON differs between two "
                                "identical SimExecutor runs";

    // The recording actually holds data: parseable, with snapshots
    // and at least one per-channel latency series.
    auto doc = json::parse(first);
    ASSERT_TRUE(doc) << doc.error().describe();
    const json::Value *snapshots = doc.value().find("snapshots");
    ASSERT_NE(snapshots, nullptr);
    EXPECT_GE(snapshots->array.size(), 4u);
    EXPECT_NE(first.find("channel.delivery_latency_ns{channel="),
              std::string::npos);
    EXPECT_NE(first.find("offcode.service_ns{offcode="),
              std::string::npos);
}

TEST_F(FlightTest, MonitorFlightMethodStreamsBoundedTail)
{
    obs::MetricsRegistry::instance().reset();
    FlightRecorder::instance().configure(FlightConfig{});
    tivo::Testbed testbed(shortScenario());
    testbed.run();

    core::Runtime *runtime = testbed.clientRuntime();
    ASSERT_NE(runtime, nullptr);
    std::string reply;
    bool replied = false;
    Status sent = runtime->invokeAsync(
        "hydra.Monitor", "Flight", Bytes{'2'},
        [&](Result<Bytes> result) {
            ASSERT_TRUE(result) << result.error().describe();
            reply.assign(result.value().begin(), result.value().end());
            replied = true;
        });
    ASSERT_TRUE(sent) << sent.error().describe();
    exec::Executor &engine = testbed.executor();
    engine.runUntil(engine.now() + sim::milliseconds(100));

    ASSERT_TRUE(replied) << "Flight reply never arrived over OOB";
    auto doc = json::parse(reply);
    ASSERT_TRUE(doc) << doc.error().describe();
    const json::Value *snapshots = doc.value().find("snapshots");
    ASSERT_NE(snapshots, nullptr);
    EXPECT_EQ(snapshots->array.size(), 2u) << "tail arg not honored";
}

} // namespace
