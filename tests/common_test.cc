/**
 * @file
 * Unit tests for the common module: Result/Status, GUIDs, byte
 * serialization, statistics, strings, and the deterministic RNG.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/bytes.hh"
#include "common/guid.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/result.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strings.hh"

namespace hydra {
namespace {

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue)
{
    Result<int> r = 42;
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.code(), ErrorCode::Ok);
}

TEST(ResultTest, HoldsError)
{
    Result<int> r = Error(ErrorCode::NotFound, "gone");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::NotFound);
    EXPECT_EQ(r.error().message, "gone");
    EXPECT_EQ(r.error().describe(), "NotFound: gone");
}

TEST(ResultTest, ValueOrFallsBack)
{
    Result<int> bad = Error(ErrorCode::Internal);
    EXPECT_EQ(bad.valueOr(7), 7);
    Result<int> good = 3;
    EXPECT_EQ(good.valueOr(7), 3);
}

TEST(ResultTest, ImplicitErrorCodeConstruction)
{
    Result<std::string> r = ErrorCode::ParseError;
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::ParseError);
}

TEST(StatusTest, DefaultIsSuccess)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
}

TEST(StatusTest, CarriesError)
{
    Status s(ErrorCode::ChannelFull, "ring exhausted");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::ChannelFull);
    EXPECT_EQ(s.error().message, "ring exhausted");
}

TEST(ErrorNameTest, EveryCodeHasAName)
{
    EXPECT_EQ(errorName(ErrorCode::Ok), "Ok");
    EXPECT_EQ(errorName(ErrorCode::NoFeasibleLayout), "NoFeasibleLayout");
    EXPECT_EQ(errorName(ErrorCode::SolverLimitReached),
              "SolverLimitReached");
}

// ---------------------------------------------------------------- Guid

TEST(GuidTest, FromNameIsDeterministic)
{
    const Guid a = Guid::fromName("tivo.Decoder");
    const Guid b = Guid::fromName("tivo.Decoder");
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.isNull());
}

TEST(GuidTest, DistinctNamesDistinctGuids)
{
    EXPECT_NE(Guid::fromName("a"), Guid::fromName("b"));
    EXPECT_NE(Guid::fromName("tivo.File"), Guid::fromName("tivo.Gui"));
}

TEST(GuidTest, ParseDecimal)
{
    Guid g;
    ASSERT_TRUE(Guid::parse("7070714", g));
    EXPECT_EQ(g.value(), 7070714u);
}

TEST(GuidTest, ParseHex)
{
    Guid g;
    ASSERT_TRUE(Guid::parse("0xABCDEF", g));
    EXPECT_EQ(g.value(), 0xabcdefu);
}

TEST(GuidTest, ParseRejectsGarbage)
{
    Guid g;
    EXPECT_FALSE(Guid::parse("", g));
    EXPECT_FALSE(Guid::parse("12x4", g));
    EXPECT_FALSE(Guid::parse("hello", g));
}

TEST(GuidTest, RoundTripsThroughString)
{
    const Guid g(0x1234abcd5678ef00ull);
    Guid parsed;
    ASSERT_TRUE(Guid::parse(g.toString(), parsed));
    EXPECT_EQ(parsed, g);
}

// ---------------------------------------------------------------- Bytes

TEST(BytesTest, PrimitiveRoundTrip)
{
    Bytes buffer;
    ByteWriter writer(buffer);
    writer.writeU8(0xab);
    writer.writeU16(0x1234);
    writer.writeU32(0xdeadbeef);
    writer.writeU64(0x0102030405060708ull);
    writer.writeI64(-42);
    writer.writeF64(3.14159);
    writer.writeString("hello");
    writer.writeBytes(Bytes{1, 2, 3});

    ByteReader reader(buffer);
    EXPECT_EQ(reader.readU8().value(), 0xab);
    EXPECT_EQ(reader.readU16().value(), 0x1234);
    EXPECT_EQ(reader.readU32().value(), 0xdeadbeefu);
    EXPECT_EQ(reader.readU64().value(), 0x0102030405060708ull);
    EXPECT_EQ(reader.readI64().value(), -42);
    EXPECT_DOUBLE_EQ(reader.readF64().value(), 3.14159);
    EXPECT_EQ(reader.readString().value(), "hello");
    EXPECT_EQ(reader.readBytes().value(), (Bytes{1, 2, 3}));
    EXPECT_TRUE(reader.exhausted());
}

TEST(BytesTest, UnderrunFails)
{
    Bytes buffer{1, 2};
    ByteReader reader(buffer);
    EXPECT_TRUE(reader.readU16().ok());
    EXPECT_FALSE(reader.readU32().ok());
}

TEST(BytesTest, TruncatedStringFails)
{
    Bytes buffer;
    ByteWriter writer(buffer);
    writer.writeU32(100); // claims 100 bytes follow; none do
    ByteReader reader(buffer);
    EXPECT_FALSE(reader.readString().ok());
}

TEST(BytesTest, Crc32KnownVector)
{
    const char *text = "123456789";
    const std::uint32_t crc = crc32(
        reinterpret_cast<const std::uint8_t *>(text), 9);
    EXPECT_EQ(crc, 0xcbf43926u); // standard check value
}

TEST(BytesTest, Crc32DetectsCorruption)
{
    Bytes data(100, 7);
    const std::uint32_t clean = crc32(data);
    data[50] ^= 1;
    EXPECT_NE(crc32(data), clean);
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, SummaryStatistics)
{
    SampleSet s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(s.median(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, SingleSample)
{
    SampleSet s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.median(), 3.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, PercentileInterpolates)
{
    SampleSet s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(95), 95.0, 1e-9);
}

TEST(StatsTest, EmptySampleSetIsSafe)
{
    // Regression: these used to be assert-only guards, i.e. undefined
    // behavior on empty sets in release builds.
    SampleSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.0), 0.0);
}

TEST(StatsTest, PercentileClampsOutOfRange)
{
    SampleSet s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.percentile(-5.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(250.0), 2.0);
}

TEST(StatsTest, EmptyHistogramRendersAndNormalizes)
{
    Histogram h(0.0, 10.0, 4);
    EXPECT_EQ(h.totalCount(), 0u);
    const auto norm = h.normalized();
    ASSERT_EQ(norm.size(), 4u);
    for (double v : norm)
        EXPECT_DOUBLE_EQ(v, 0.0);
    const std::string art = h.render(20);
    EXPECT_FALSE(art.empty());
    EXPECT_EQ(art.find('#'), std::string::npos); // no bars drawn
}

TEST(StatsTest, DegenerateHistogramRangeIsSafe)
{
    // min == max happens whenever a bench histograms a constant
    // series; it must not divide by zero. The range widens to unit
    // width and out-of-range samples clamp as usual.
    Histogram h(5.0, 5.0, 10);
    h.add(5.0);
    h.add(4.0);
    h.add(6.0);
    EXPECT_EQ(h.totalCount(), 3u);
    EXPECT_EQ(h.bins().front().count, 2u); // 5.0 and the clamped 4.0
    EXPECT_EQ(h.bins().back().count, 1u);  // the clamped 6.0

    Histogram zero_bins(0.0, 1.0, 0);
    zero_bins.add(0.5);
    EXPECT_EQ(zero_bins.bins().size(), 1u);
    EXPECT_EQ(zero_bins.totalCount(), 1u);
}

TEST(StatsTest, HistogramBinsAndClamps)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(5.6);
    h.add(-3.0); // clamps into first bin
    h.add(99.0); // clamps into last bin
    EXPECT_EQ(h.totalCount(), 5u);
    EXPECT_EQ(h.bins()[0].count, 2u);
    EXPECT_EQ(h.bins()[5].count, 2u);
    EXPECT_EQ(h.bins()[9].count, 1u);

    const auto norm = h.normalized();
    EXPECT_DOUBLE_EQ(norm[0], 0.4);
}

TEST(StatsTest, EmpiricalCdfMonotonicEndsAtOne)
{
    SampleSet s;
    for (double v : {1.0, 1.0, 2.0, 3.0, 3.0, 3.0})
        s.add(v);
    const auto cdf = empiricalCdf(s);
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0].probability, 2.0 / 6.0);
    EXPECT_DOUBLE_EQ(cdf[1].probability, 3.0 / 6.0);
    EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GT(cdf[i].value, cdf[i - 1].value);
        EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
    }
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 5.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(9);
    bool sawLow = false, sawHigh = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        sawLow |= v == 0;
        sawHigh |= v == 3;
    }
    EXPECT_TRUE(sawLow);
    EXPECT_TRUE(sawHigh);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect)
{
    Rng rng(11);
    SampleSet s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect)
{
    Rng rng(13);
    SampleSet s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 4.0, 0.2);
    EXPECT_GE(s.min(), 0.0);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, Trim)
{
    EXPECT_EQ(trim("  abc \t\n"), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, PrefixSuffix)
{
    EXPECT_TRUE(startsWith("hydra.Runtime", "hydra."));
    EXPECT_FALSE(startsWith("hy", "hydra"));
    EXPECT_TRUE(endsWith("file.odf", ".odf"));
    EXPECT_FALSE(endsWith("odf", ".odf"));
}

TEST(StringsTest, ParseNumbers)
{
    long long i = 0;
    EXPECT_TRUE(parseInt(" 42 ", i));
    EXPECT_EQ(i, 42);
    EXPECT_TRUE(parseInt("-7", i));
    EXPECT_EQ(i, -7);
    EXPECT_FALSE(parseInt("4x", i));
    EXPECT_FALSE(parseInt("", i));

    double d = 0.0;
    EXPECT_TRUE(parseDouble("3.5", d));
    EXPECT_DOUBLE_EQ(d, 3.5);
    EXPECT_FALSE(parseDouble("3.5z", d));
}

TEST(StringsTest, ToLower)
{
    EXPECT_EQ(toLower("AsymmetricGANG"), "asymmetricgang");
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, SinkCapturesAtOrAboveLevel)
{
    std::vector<std::string> captured;
    Log::setSink([&](LogLevel, const std::string &msg) {
        captured.push_back(msg);
    });
    const LogLevel old = Log::level();
    Log::setLevel(LogLevel::Warn);

    LOG_DEBUG << "invisible";
    LOG_WARN << "visible " << 42;

    Log::setLevel(old);
    Log::setSink(nullptr);

    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "visible 42");
}

// ------------------------------------------------------------------ JSON

TEST(JsonTest, ParsesScalarsAndEscapes)
{
    auto doc = json::parse(
        "{\"s\":\"a\\n\\\"b\\u0041\",\"n\":42,\"neg\":-1.5,"
        "\"t\":true,\"f\":false,\"z\":null}");
    ASSERT_TRUE(doc.ok()) << doc.error().describe();
    ASSERT_TRUE(doc.value().isObject());
    EXPECT_EQ(doc.value().find("s")->string, "a\n\"bA");
    EXPECT_EQ(doc.value().find("n")->asU64(), 42u);
    EXPECT_DOUBLE_EQ(doc.value().find("neg")->number, -1.5);
    EXPECT_TRUE(doc.value().find("t")->boolean);
    EXPECT_FALSE(doc.value().find("f")->boolean);
    EXPECT_TRUE(doc.value().find("z")->isNull());
}

TEST(JsonTest, ParsesNestedArraysAndObjects)
{
    auto doc = json::parse("[{\"a\":[1,2,3]},{\"a\":[]}]");
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(doc.value().isArray());
    ASSERT_EQ(doc.value().array.size(), 2u);
    const json::Value *inner = doc.value().array[0].find("a");
    ASSERT_NE(inner, nullptr);
    ASSERT_EQ(inner->array.size(), 3u);
    EXPECT_EQ(inner->array[2].asU64(), 3u);
    EXPECT_TRUE(doc.value().array[1].find("a")->array.empty());
}

TEST(JsonTest, FindOnNonObjectIsNull)
{
    auto doc = json::parse("[1]");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().find("anything"), nullptr);
    EXPECT_EQ(doc.value().array[0].asU64(), 1u);
    EXPECT_EQ(doc.value().asU64(), 0u); // not a number
}

TEST(JsonTest, RejectsMalformedDocuments)
{
    EXPECT_FALSE(json::parse("").ok());
    EXPECT_FALSE(json::parse("{").ok());
    EXPECT_FALSE(json::parse("{\"a\":}").ok());
    EXPECT_FALSE(json::parse("[1,]").ok());
    EXPECT_FALSE(json::parse("\"unterminated").ok());
    EXPECT_FALSE(json::parse("{} trailing").ok());
    EXPECT_FALSE(json::parse("nul").ok());
}

TEST(SparklineTest, DegenerateSeriesStaySane)
{
    // hydra_top feeds whatever a flight recording holds — including
    // zero- and one-snapshot recordings — straight into sparkline().
    EXPECT_EQ(sparkline({}), "");
    EXPECT_EQ(sparkline({5.0}), "█");
    EXPECT_EQ(sparkline({0.0}), "▁");
    EXPECT_EQ(sparkline({0.0, 0.0, 0.0}), "▁▁▁");
}

TEST(SparklineTest, ScalesAgainstOwnMax)
{
    // 3.5/7 scales to level round(3.5 + 0.5) = 4 of 7.
    const std::string line = sparkline({0.0, 3.5, 7.0});
    EXPECT_EQ(line, "▁▅█");
}

TEST(SparklineTest, ClampsNegativeAndNonFinite)
{
    // Counter deltas can never be negative, but gauge series can be;
    // both must render at the baseline rather than index off the
    // glyph table.
    EXPECT_EQ(sparkline({-4.0, 2.0}), "▁█");
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(sparkline({nan, 1.0}), "▁█");
    EXPECT_EQ(sparkline({-inf, 1.0}), "▁█");
    // +inf clamps to zero too (non-finite), leaving the finite
    // samples to set the scale.
    EXPECT_EQ(sparkline({inf, 2.0}), "▁█");
}

} // namespace
} // namespace hydra
