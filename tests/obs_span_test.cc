/**
 * @file
 * Tests for causal span tracing: parent/child context semantics,
 * trace-id inheritance across channel sends and proxy calls, the
 * flow-event / span-listing JSON exports, and the HYDRA_TRACING=OFF
 * no-op branch. Everything here runs in both build modes; the
 * propagation tests are compiled only when tracing is built in, and
 * the OFF build instead verifies that the whole API collapses to
 * no-ops.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/call.hh"
#include "core/executive.hh"
#include "core/offcode.hh"
#include "core/providers.hh"
#include "core/proxy.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "json_checker.hh"
#include "net/network.hh"
#include "obs/span.hh"
#include "obs/trace.hh"

#include "exec/sim_executor.hh"

namespace hydra::core {
namespace {

using hydra::testutil::JsonChecker;

/** Offcode that snapshots the active span context in its handlers. */
class ContextProbeOffcode : public Offcode
{
  public:
    ContextProbeOffcode() : Offcode("test.Probe")
    {
        registerMethod("Observe",
                       [this](const Bytes &args) -> Result<Bytes> {
                           callCtx = obs::activeContext();
                           return args;
                       });
    }

    void
    onData(const Payload &, ChannelHandle) override
    {
        dataCtx = obs::activeContext();
        ++dataCount;
    }

    obs::SpanContext callCtx;
    obs::SpanContext dataCtx;
    int dataCount = 0;
};

/** Host + NIC-device testbed with an enabled tracer per test. */
class SpanFixture : public ::testing::Test
{
  protected:
    SpanFixture()
        : machine_(sim_, hw::MachineConfig{}),
          net_(sim_, net::NetworkConfig{}),
          hostSite_(machine_)
    {
        nicNode_ = net_.addNode("nic");
        nic_ = std::make_unique<dev::ProgrammableNic>(
            sim_, machine_.bus(), net_, nicNode_);
        deviceSite_ = std::make_unique<DeviceSite>(machine_, *nic_);

        executive_ = std::make_unique<ChannelExecutive>(
            [this](const std::string &name) -> ExecutionSite * {
                if (name == hostSite_.name())
                    return &hostSite_;
                if (name == deviceSite_->name())
                    return deviceSite_.get();
                return nullptr;
            });
        executive_->registerProvider(
            std::make_unique<LocalChannelProvider>(sim_));
        executive_->registerProvider(
            std::make_unique<DmaRingChannelProvider>(sim_, false));
    }

    void
    SetUp() override
    {
        obs::Tracer::instance().enable(4096);
        obs::resetSpanIds();
    }

    void
    TearDown() override
    {
        obs::Tracer::instance().disable();
        obs::Tracer::instance().clear();
        obs::resetSpanIds();
    }

    void
    place(Offcode &offcode, ExecutionSite &site)
    {
        OffcodeContext ctx;
        ctx.site = &site;
        ASSERT_TRUE(offcode.doInitialize(ctx).ok());
        ASSERT_TRUE(offcode.doStart().ok());
    }

    /** Channel host -> device with @p offcode connected at the far end. */
    Channel *
    deviceChannel(Offcode &offcode)
    {
        ChannelConfig config;
        config.targetDevice = deviceSite_->name();
        auto channel = executive_->createChannel(config, hostSite_);
        if (!channel.ok() ||
            !channel.value()->connectOffcode(offcode).ok())
            return nullptr;
        return channel.value();
    }

    exec::SimExecutor sim_;
    hw::Machine machine_;
    net::Network net_;
    net::NodeId nicNode_ = 0;
    std::unique_ptr<dev::ProgrammableNic> nic_;
    HostSite hostSite_;
    std::unique_ptr<DeviceSite> deviceSite_;
    std::unique_ptr<ChannelExecutive> executive_;
};

} // namespace

#if HYDRA_OBS_TRACING

// ------------------------------------------------- context semantics

TEST_F(SpanFixture, RootSpanStartsItsOwnTrace)
{
    ASSERT_FALSE(obs::activeContext().valid());

    obs::Span span;
    span.open("test", "host", "root", "test", 100);
    ASSERT_TRUE(span.active());
    const obs::SpanContext ctx = span.context();
    EXPECT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.traceId, ctx.spanId);
    EXPECT_EQ(ctx.parentId, 0u);
    // While the span is open its context is the active one.
    EXPECT_EQ(obs::activeContext().spanId, ctx.spanId);
    span.end(200);
}

TEST_F(SpanFixture, ChildSpanInheritsTraceAndLinksParent)
{
    obs::Span root;
    root.open("test", "host", "root", "test", 0);
    const obs::SpanContext rootCtx = root.context();

    {
        obs::Span child;
        child.open("test", "device", "child", "test", 10);
        const obs::SpanContext childCtx = child.context();
        EXPECT_EQ(childCtx.traceId, rootCtx.traceId);
        EXPECT_EQ(childCtx.parentId, rootCtx.spanId);
        EXPECT_NE(childCtx.spanId, rootCtx.spanId);
        child.end(20);
    }

    // The child restored the parent's context on destruction.
    EXPECT_EQ(obs::activeContext().spanId, rootCtx.spanId);
}

TEST_F(SpanFixture, ContextScopeRestoresOnExit)
{
    const obs::SpanContext installed{7, 8, 9};
    {
        obs::ContextScope scope(installed);
        EXPECT_EQ(obs::activeContext().traceId, 7u);
        EXPECT_EQ(obs::activeContext().spanId, 8u);
    }
    EXPECT_FALSE(obs::activeContext().valid());
}

TEST_F(SpanFixture, ResetSpanIdsIsDeterministic)
{
    auto firstIds = [] {
        obs::Span span;
        span.open("test", "host", "s", "test", 0);
        const obs::SpanContext ctx = span.context();
        span.end(1);
        return ctx;
    };
    obs::resetSpanIds();
    const obs::SpanContext a = firstIds();
    obs::resetSpanIds();
    const obs::SpanContext b = firstIds();
    EXPECT_EQ(a.traceId, b.traceId);
    EXPECT_EQ(a.spanId, b.spanId);
}

TEST_F(SpanFixture, EndWithoutOpenIsSafe)
{
    obs::Span span;
    span.end(123); // never opened — must be a no-op, not a crash
    EXPECT_FALSE(span.active());
    EXPECT_EQ(obs::Tracer::instance().eventsRecorded(), 0u);
}

// ---------------------------------------------- cross-site propagation

TEST_F(SpanFixture, ChannelSendInheritsTraceId)
{
    ContextProbeOffcode probe;
    place(probe, *deviceSite_);
    Channel *channel = deviceChannel(probe);
    ASSERT_NE(channel, nullptr);

    obs::SpanContext rootCtx;
    {
        obs::Span root;
        root.open("test", "host", "root", "test", sim_.now());
        rootCtx = root.context();
        ASSERT_TRUE(channel->write(encodeData(Bytes{1, 2, 3})).ok());
        root.end(sim_.now());
    }
    sim_.runToCompletion();

    // The device-side handler ran inside a span context that belongs
    // to the sender's trace: same trace-id, parented on the root.
    ASSERT_EQ(probe.dataCount, 1);
    ASSERT_TRUE(probe.dataCtx.valid());
    EXPECT_EQ(probe.dataCtx.traceId, rootCtx.traceId);
    EXPECT_EQ(probe.dataCtx.parentId, rootCtx.spanId);
}

TEST_F(SpanFixture, ProxyCallInheritsTraceId)
{
    ContextProbeOffcode probe;
    place(probe, *deviceSite_);
    Channel *channel = deviceChannel(probe);
    ASSERT_NE(channel, nullptr);

    Proxy proxy(*channel, probe.guid(), probe.guid());
    obs::SpanContext rootCtx;
    obs::SpanContext returnCtx;
    bool returned = false;
    {
        obs::Span root;
        root.open("test", "host", "root", "test", sim_.now());
        rootCtx = root.context();
        ASSERT_TRUE(proxy.invoke("Observe", Bytes{4, 5},
                                 [&](Result<Bytes> r) {
                                     ASSERT_TRUE(r.ok());
                                     returnCtx = obs::activeContext();
                                     returned = true;
                                 })
                        .ok());
        root.end(sim_.now());
    }
    sim_.runToCompletion();

    // The method body executed in the caller's trace...
    ASSERT_TRUE(probe.callCtx.valid());
    EXPECT_EQ(probe.callCtx.traceId, rootCtx.traceId);
    // ...and the Return callback was restored into it too, parented
    // on the root span that issued the call.
    ASSERT_TRUE(returned);
    ASSERT_TRUE(returnCtx.valid());
    EXPECT_EQ(returnCtx.traceId, rootCtx.traceId);
    EXPECT_EQ(returnCtx.parentId, rootCtx.spanId);
}

TEST_F(SpanFixture, DispatchEmitsNamedCallSpan)
{
    ContextProbeOffcode probe;
    place(probe, *deviceSite_);
    Channel *channel = deviceChannel(probe);
    ASSERT_NE(channel, nullptr);

    Proxy proxy(*channel, probe.guid(), probe.guid());
    ASSERT_TRUE(
        proxy.invoke("Observe", Bytes{}, [](Result<Bytes>) {}).ok());
    sim_.runToCompletion();

    std::ostringstream out;
    obs::Tracer::instance().writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"call.Observe\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"channel.send\""), std::string::npos) << json;
}

// -------------------------------------------------------- JSON export

TEST_F(SpanFixture, FlowEventJsonIsWellFormed)
{
    ContextProbeOffcode probe;
    place(probe, *deviceSite_);
    Channel *channel = deviceChannel(probe);
    ASSERT_NE(channel, nullptr);
    {
        obs::Span root;
        root.open("test", "host", "root", "test", sim_.now());
        ASSERT_TRUE(channel->write(encodeData(Bytes{9})).ok());
        root.end(sim_.now());
    }
    sim_.runToCompletion();

    std::ostringstream out;
    obs::Tracer::instance().writeJson(out);
    const std::string json = out.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    // Span slices carry the causal triple and the flow-event pairs
    // that make Perfetto draw the connecting arrows.
    EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
    EXPECT_NE(json.find("\"span_id\""), std::string::npos);
    EXPECT_NE(json.find("\"parent_id\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
}

TEST_F(SpanFixture, SpanListingJsonIsWellFormed)
{
    {
        obs::Span root;
        root.open("test", "host", "root", "test", 100);
        obs::Span child;
        child.open("test", "device", "child", "test", 150);
        child.end(180);
        root.end(200);
    }

    std::ostringstream out;
    obs::Tracer::instance().writeSpansJson(out);
    const std::string json = out.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"child\""), std::string::npos);
    EXPECT_NE(json.find("\"ts_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"dur_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
}

TEST_F(SpanFixture, DisabledTracerOpensNoSpans)
{
    obs::Tracer::instance().disable();
    ASSERT_FALSE(HYDRA_TRACE_ACTIVE());

    obs::Span span;
    span.open("test", "host", "ghost", "test", 0);
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(span.context().valid());
    EXPECT_FALSE(obs::activeContext().valid());
    span.end(10);
    EXPECT_EQ(obs::Tracer::instance().eventsRecorded(), 0u);
}

#else // !HYDRA_OBS_TRACING

// With tracing compiled out, the span API must still link and must
// never produce a context or an event — even with the tracer enabled.

TEST_F(SpanFixture, CompiledOutSpansAreNoOps)
{
    ASSERT_FALSE(HYDRA_TRACE_ACTIVE());

    obs::Span span;
    span.open("test", "host", "root", "test", 0);
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(span.context().valid());
    span.end(10);

    obs::setActiveContext(obs::SpanContext{1, 2, 3});
    EXPECT_FALSE(obs::activeContext().valid());
    obs::ContextScope scope(obs::SpanContext{4, 5, 6});
    EXPECT_FALSE(obs::activeContext().valid());
    obs::resetSpanIds();
}

TEST_F(SpanFixture, CompiledOutPropagationDeliversWithoutContext)
{
    ContextProbeOffcode probe;
    place(probe, *deviceSite_);
    Channel *channel = deviceChannel(probe);
    ASSERT_NE(channel, nullptr);

    obs::Span root;
    root.open("test", "host", "root", "test", sim_.now());
    ASSERT_TRUE(channel->write(encodeData(Bytes{1})).ok());
    root.end(sim_.now());
    sim_.runToCompletion();

    // Delivery still works; no causal identity is attached.
    ASSERT_EQ(probe.dataCount, 1);
    EXPECT_FALSE(probe.dataCtx.valid());
}

#endif // HYDRA_OBS_TRACING

} // namespace hydra::core
