/**
 * @file
 * Tests for Call marshaling, channels (local + DMA ring), the
 * Channel Executive's provider selection, and the invocation proxy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "common/payload.hh"
#include "core/call.hh"
#include "obs/metrics.hh"
#include "core/executive.hh"
#include "core/offcode.hh"
#include "core/proxy.hh"
#include "core/providers.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

namespace hydra::core {
namespace {

// ---------------------------------------------------------------- Call

TEST(CallTest, SerializeRoundTrip)
{
    Call call;
    call.targetOffcode = Guid(111);
    call.interfaceGuid = Guid(222);
    call.method = "Decode";
    call.arguments = Bytes{1, 2, 3};
    call.callId = 77;
    call.expectsReturn = false;

    auto decoded = Call::deserialize(call.serialize());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().targetOffcode, Guid(111));
    EXPECT_EQ(decoded.value().interfaceGuid, Guid(222));
    EXPECT_EQ(decoded.value().method, "Decode");
    EXPECT_EQ(decoded.value().arguments, (Bytes{1, 2, 3}));
    EXPECT_EQ(decoded.value().callId, 77u);
    EXPECT_FALSE(decoded.value().expectsReturn);
}

TEST(CallTest, ReturnRoundTrip)
{
    CallReturn ret;
    ret.callId = 9;
    ret.ok = false;
    ret.error = "boom";
    auto decoded = CallReturn::deserialize(ret.serialize());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().callId, 9u);
    EXPECT_FALSE(decoded.value().ok);
    EXPECT_EQ(decoded.value().error, "boom");
}

TEST(CallTest, KindMismatchRejected)
{
    Call call;
    call.method = "m";
    EXPECT_FALSE(CallReturn::deserialize(call.serialize()).ok());
    EXPECT_FALSE(Call::deserialize(encodeData(Bytes{1})).ok());
}

TEST(CallTest, PeekKindAndDataWrapper)
{
    const Payload wrapped = encodeData(Bytes{5, 6});
    EXPECT_EQ(peekKind(wrapped).value(), MessageKind::Data);
    EXPECT_EQ(decodeData(wrapped).value(), (Bytes{5, 6}));
    EXPECT_FALSE(peekKind(Bytes{}).ok());
    EXPECT_FALSE(peekKind(Bytes{99}).ok());
    // The decoded body is a zero-copy slice of the wrapped buffer.
    auto body = decodeData(wrapped).value();
    EXPECT_EQ(body.data(), wrapped.data() + 5);
}

// ------------------------------------------------------------ Fixtures

/** Echo Offcode: returns its arguments reversed. */
class EchoOffcode : public Offcode
{
  public:
    EchoOffcode() : Offcode("test.Echo")
    {
        registerMethod("Reverse", [](const Bytes &args) -> Result<Bytes> {
            Bytes out(args.rbegin(), args.rend());
            return out;
        });
        registerMethod("Fail", [](const Bytes &) -> Result<Bytes> {
            return Error(ErrorCode::Internal, "deliberate");
        });
    }

    void
    onData(const Payload &payload, ChannelHandle from) override
    {
        dataReceived.push_back(payload);
        lastFrom = from;
    }

    std::vector<Payload> dataReceived;
    ChannelHandle lastFrom;
};

class ChannelFixture : public ::testing::Test
{
  protected:
    ChannelFixture()
        : machine_(sim_, hw::MachineConfig{}),
          net_(sim_, net::NetworkConfig{}),
          hostSite_(machine_)
    {
        nicNode_ = net_.addNode("nic");
        nic_ = std::make_unique<dev::ProgrammableNic>(
            sim_, machine_.bus(), net_, nicNode_);
        deviceSite_ =
            std::make_unique<DeviceSite>(machine_, *nic_);

        executive_ = std::make_unique<ChannelExecutive>(
            [this](const std::string &name) -> ExecutionSite * {
                if (name == hostSite_.name())
                    return &hostSite_;
                if (name == deviceSite_->name())
                    return deviceSite_.get();
                auto it = extraSites_.find(name);
                return it != extraSites_.end() ? it->second : nullptr;
            });
        executive_->registerProvider(
            std::make_unique<LocalChannelProvider>(sim_));
        executive_->registerProvider(
            std::make_unique<DmaRingChannelProvider>(sim_, false));
    }

    /** Initialize an offcode at a site (minimal context). */
    void
    place(Offcode &offcode, ExecutionSite &site)
    {
        OffcodeContext ctx;
        ctx.site = &site;
        ASSERT_TRUE(offcode.doInitialize(ctx).ok());
        ASSERT_TRUE(offcode.doStart().ok());
    }

    exec::SimExecutor sim_;
    hw::Machine machine_;
    net::Network net_;
    net::NodeId nicNode_ = 0;
    std::unique_ptr<dev::ProgrammableNic> nic_;
    HostSite hostSite_;
    std::unique_ptr<DeviceSite> deviceSite_;
    std::unique_ptr<ChannelExecutive> executive_;
    std::map<std::string, ExecutionSite *> extraSites_;
};

// ---------------------------------------------------------- Executive

TEST_F(ChannelFixture, PicksLocalProviderForSameSite)
{
    ChannelConfig config;
    config.targetDevice = hostSite_.name();
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.ok());
    EXPECT_EQ(executive_->activeChannels(), 1u);
}

TEST_F(ChannelFixture, UnknownTargetFails)
{
    ChannelConfig config;
    config.targetDevice = "no-such-device";
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_FALSE(channel.ok());
    EXPECT_EQ(channel.error().code, ErrorCode::NotFound);
}

TEST_F(ChannelFixture, DestroyRemovesChannel)
{
    ChannelConfig config;
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.ok());
    EXPECT_TRUE(executive_->destroyChannel(channel.value()).ok());
    EXPECT_EQ(executive_->activeChannels(), 0u);
    EXPECT_FALSE(executive_->destroyChannel(channel.value()).ok());
}

TEST_F(ChannelFixture, ProviderNamesListed)
{
    const auto names = executive_->providerNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "local");
    EXPECT_EQ(names[1], "dma-ring");
}

// ------------------------------------------------------------ Channels

TEST_F(ChannelFixture, CrossSiteDataDelivery)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE(channel.value()->connectOffcode(echo).ok());

    const auto busBefore = machine_.bus().stats().transactions;
    ASSERT_TRUE(channel.value()->write(encodeData(Bytes{1, 2, 3})).ok());
    sim_.runToCompletion();

    ASSERT_EQ(echo.dataReceived.size(), 1u);
    EXPECT_EQ(echo.dataReceived[0], (Bytes{1, 2, 3}));
    EXPECT_GT(machine_.bus().stats().transactions, busBefore);
}

TEST_F(ChannelFixture, CallDispatchAndReturn)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE(channel.value()->connectOffcode(echo).ok());

    Proxy proxy(*channel.value(), echo.guid(), echo.guid());
    Bytes result;
    ASSERT_TRUE(proxy.invoke("Reverse", Bytes{1, 2, 3},
                             [&](Result<Bytes> r) {
                                 ASSERT_TRUE(r.ok());
                                 result = r.value();
                             })
                    .ok());
    sim_.runToCompletion();
    EXPECT_EQ(result, (Bytes{3, 2, 1}));
    EXPECT_EQ(proxy.pendingCalls(), 0u);
}

TEST_F(ChannelFixture, FailedCallPropagatesError)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.value()->connectOffcode(echo).ok());

    Proxy proxy(*channel.value(), echo.guid(), echo.guid());
    bool failed = false;
    std::string message;
    proxy.invoke("Fail", Bytes{}, [&](Result<Bytes> r) {
        failed = !r.ok();
        if (!r.ok())
            message = r.error().message;
    });
    sim_.runToCompletion();
    EXPECT_TRUE(failed);
    EXPECT_NE(message.find("deliberate"), std::string::npos);
}

TEST_F(ChannelFixture, DeclaredInterfacesAreEnforced)
{
    EchoOffcode echo;
    echo.declareInterface(Guid::fromName("IEcho"));
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    // Wrong interface GUID: rejected with InterfaceMismatch.
    Proxy wrong(*channel.value(), echo.guid(),
                Guid::fromName("ISomethingElse"));
    bool failed = false;
    std::string message;
    wrong.invoke("Reverse", Bytes{1}, [&](Result<Bytes> r) {
        failed = !r.ok();
        if (!r.ok())
            message = r.error().message;
    });
    sim_.runToCompletion();
    EXPECT_TRUE(failed);
    EXPECT_NE(message.find("InterfaceMismatch"), std::string::npos);

    // The declared interface works.
    Proxy right(*channel.value(), echo.guid(), Guid::fromName("IEcho"));
    Bytes result;
    right.invoke("Reverse", Bytes{1, 2}, [&](Result<Bytes> r) {
        ASSERT_TRUE(r.ok());
        result = r.value();
    });
    sim_.runToCompletion();
    EXPECT_EQ(result, (Bytes{2, 1}));

    // The IOffcode identity (the Offcode's own GUID) always works.
    Proxy identity(*channel.value(), echo.guid(), echo.guid());
    bool ok = false;
    identity.invoke("Reverse", Bytes{3}, [&](Result<Bytes> r) {
        ok = r.ok();
    });
    sim_.runToCompletion();
    EXPECT_TRUE(ok);

    // Undeclared offcodes accept any interface.
    EchoOffcode open;
    EXPECT_TRUE(open.supportsInterface(Guid::fromName("whatever")));
}

TEST_F(ChannelFixture, UnknownMethodReturnsError)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);
    ChannelConfig config;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    Proxy proxy(*channel.value(), echo.guid(), echo.guid());
    bool failed = false;
    proxy.invoke("Nope", Bytes{}, [&](Result<Bytes> r) {
        failed = !r.ok();
    });
    sim_.runToCompletion();
    EXPECT_TRUE(failed);
}

TEST_F(ChannelFixture, WriteWithoutPeerFails)
{
    ChannelConfig config;
    auto channel = executive_->createChannel(config, hostSite_);
    Status written = channel.value()->write(Bytes{1});
    EXPECT_FALSE(written);
    EXPECT_EQ(written.code(), ErrorCode::ChannelNotConnected);
}

TEST_F(ChannelFixture, OversizeMessageRejected)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);
    ChannelConfig config;
    config.maxMessageBytes = 64;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);
    Status written = channel.value()->write(Bytes(100, 0));
    EXPECT_FALSE(written);
    EXPECT_EQ(written.code(), ErrorCode::MessageTooLarge);
}

TEST_F(ChannelFixture, UnicastRejectsThirdEndpoint)
{
    EchoOffcode first, second;
    place(first, *deviceSite_);
    place(second, *deviceSite_);

    ChannelConfig config;
    config.type = ChannelConfig::Type::Unicast;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    EXPECT_TRUE(channel.value()->connectOffcode(first).ok());
    Status third = channel.value()->connectOffcode(second);
    EXPECT_FALSE(third);
    EXPECT_EQ(third.code(), ErrorCode::Unsupported);
}

TEST_F(ChannelFixture, MulticastDeliversToAllEndpoints)
{
    EchoOffcode a, b;
    place(a, *deviceSite_);
    place(b, *deviceSite_);

    ChannelConfig config;
    config.type = ChannelConfig::Type::Multicast;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.value()->connectOffcode(a).ok());
    ASSERT_TRUE(channel.value()->connectOffcode(b).ok());

    channel.value()->write(encodeData(Bytes{9}));
    sim_.runToCompletion();
    EXPECT_EQ(a.dataReceived.size(), 1u);
    EXPECT_EQ(b.dataReceived.size(), 1u);
}

TEST_F(ChannelFixture, ClosedChannelRefusesWrites)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);
    ChannelConfig config;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);
    channel.value()->close();
    Status written = channel.value()->write(encodeData(Bytes{1}));
    EXPECT_FALSE(written);
    EXPECT_EQ(written.code(), ErrorCode::ChannelClosed);
}

TEST_F(ChannelFixture, UnreliableChannelDropsWhenRingFull)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.reliable = false;
    config.ringDepth = 4;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    // Burst far beyond the ring depth without letting the sim drain.
    for (int i = 0; i < 64; ++i)
        channel.value()->write(encodeData(Bytes(1024, 1)));
    sim_.runToCompletion();

    EXPECT_GT(channel.value()->stats().messagesDropped, 0u);
    EXPECT_LT(echo.dataReceived.size(), 64u);
}

TEST_F(ChannelFixture, ReliableChannelBacklogsInsteadOfDropping)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.reliable = true;
    config.ringDepth = 4;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    for (int i = 0; i < 64; ++i)
        channel.value()->write(encodeData(Bytes(1024, 1)));
    sim_.runToCompletion();

    EXPECT_EQ(channel.value()->stats().messagesDropped, 0u);
    EXPECT_EQ(echo.dataReceived.size(), 64u);
}

TEST_F(ChannelFixture, PollWithoutHandlerQueues)
{
    ChannelConfig config;
    config.targetDevice = hostSite_.name();
    auto channel = executive_->createChannel(config, hostSite_);
    // Second host endpoint without an offcode handler.
    // (Use connectCreator-like path via a second offcode w/o handler
    // is covered elsewhere; here poll on creator endpoint.)
    EchoOffcode echo;
    place(echo, hostSite_);
    channel.value()->connectOffcode(echo);

    // The echo writes back raw data toward the creator (endpoint 0),
    // which has no handler -> must be pollable.
    channel.value()->writeFrom(1, encodeData(Bytes{4}));
    sim_.runToCompletion();

    auto polled = channel.value()->poll(0);
    ASSERT_TRUE(polled.ok());
    EXPECT_EQ(decodeData(polled.value()).value(), (Bytes{4}));
    EXPECT_FALSE(channel.value()->poll(0).ok());
}

TEST_F(ChannelFixture, HandlerInstallDrainsQueue)
{
    ChannelConfig config;
    config.targetDevice = hostSite_.name();
    auto channel = executive_->createChannel(config, hostSite_);
    EchoOffcode echo;
    place(echo, hostSite_);
    channel.value()->connectOffcode(echo);

    channel.value()->writeFrom(1, encodeData(Bytes{7}));
    sim_.runToCompletion();

    std::vector<Payload> got;
    channel.value()->installCallHandler(
        [&](const Payload &message, std::size_t) {
            got.push_back(message);
        });
    ASSERT_EQ(got.size(), 1u);
}

TEST_F(ChannelFixture, DeviceToDeviceSingleCrossing)
{
    // Second device on the same bus.
    const net::NodeId node2 = net_.addNode("nic2");
    dev::DeviceConfig config2 = dev::ProgrammableNic::nicDefaultConfig();
    config2.name = "nic2";
    dev::ProgrammableNic nic2(sim_, machine_.bus(), net_, node2, config2);
    DeviceSite site2(machine_, nic2);
    extraSites_[site2.name()] = &site2;

    EchoOffcode echo;
    place(echo, site2);

    ChannelConfig config;
    config.targetDevice = site2.name();
    auto channel = executive_->createChannel(config, *deviceSite_);
    ASSERT_TRUE(channel.ok());
    ASSERT_TRUE(channel.value()->connectOffcode(echo).ok());

    const auto busBefore = machine_.bus().stats().transactions;
    channel.value()->write(encodeData(Bytes(512, 2)));
    sim_.runToCompletion();
    EXPECT_EQ(machine_.bus().stats().transactions - busBefore, 1u);
    EXPECT_EQ(echo.dataReceived.size(), 1u);
}

TEST_F(ChannelFixture, CopyingChannelTouchesHostCache)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.buffering = ChannelConfig::Buffering::Copying;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    const auto accessesBefore = machine_.l2().totals().accesses;
    channel.value()->write(encodeData(Bytes(4096, 1)));
    sim_.runToCompletion();
    EXPECT_GT(machine_.l2().totals().accesses, accessesBefore);
}

TEST_F(ChannelFixture, ZeroCopySparesTheHostCache)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.buffering = ChannelConfig::Buffering::ZeroCopy;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    const auto accessesBefore = machine_.l2().totals().accesses;
    channel.value()->write(encodeData(Bytes(4096, 1)));
    sim_.runToCompletion();
    EXPECT_EQ(machine_.l2().totals().accesses, accessesBefore);
}

TEST_F(ChannelFixture, BacklogDrainsInFifoOrder)
{
    // A ring of 4 descriptors against a burst of 32: most messages
    // sit in the reliable backlog and must drain in send order as
    // descriptors recycle.
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.reliable = true;
    config.ringDepth = 4;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    for (int i = 0; i < 32; ++i)
        channel.value()->write(
            encodeData(Bytes{static_cast<std::uint8_t>(i)}));
    sim_.runToCompletion();

    ASSERT_EQ(echo.dataReceived.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(echo.dataReceived[static_cast<std::size_t>(i)],
                  Bytes{static_cast<std::uint8_t>(i)})
            << "out of order at index " << i;
    EXPECT_EQ(channel.value()->stats().messagesDropped, 0u);
}

TEST_F(ChannelFixture, UnreliableDropCountMatchesOfferedMinusDelivered)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.reliable = false;
    config.ringDepth = 4;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    constexpr std::size_t kOffered = 64;
    for (std::size_t i = 0; i < kOffered; ++i)
        channel.value()->write(encodeData(Bytes(1024, 1)));
    sim_.runToCompletion();

    // Conservation: every offered message was either delivered or
    // counted as dropped — none vanished, none was duplicated.
    EXPECT_EQ(echo.dataReceived.size() +
                  channel.value()->stats().messagesDropped,
              kOffered);
    EXPECT_GT(channel.value()->stats().messagesDropped, 0u);
}

TEST_F(ChannelFixture, MulticastSharesOneBufferAcrossEndpoints)
{
    // Aliasing invariant of the zero-copy fabric: fan-out hands every
    // endpoint a view of the sender's single buffer, and nothing in
    // flight mutates the shared bytes.
    EchoOffcode a, b;
    place(a, *deviceSite_);
    place(b, *deviceSite_);

    ChannelConfig config;
    config.type = ChannelConfig::Type::Multicast;
    config.reliable = true;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.value()->connectOffcode(a).ok());
    ASSERT_TRUE(channel.value()->connectOffcode(b).ok());

    const Payload message = encodeData(Bytes(2048, 0x3c));
    const std::uint8_t *wire = message.data();
    channel.value()->write(message); // sender keeps its reference
    sim_.runToCompletion();

    ASSERT_EQ(a.dataReceived.size(), 1u);
    ASSERT_EQ(b.dataReceived.size(), 1u);
    // Both endpoints hold slices of the sender's own buffer (the
    // body starts after the 5-byte Data frame header)...
    EXPECT_EQ(a.dataReceived[0].data(), wire + 5);
    EXPECT_EQ(b.dataReceived[0].data(), wire + 5);
    // ...and the shared content is intact after the fan-out.
    EXPECT_EQ(a.dataReceived[0], Bytes(2048, 0x3c));
    EXPECT_EQ(message.refCount(), 3u); // sender + two retained views
}

TEST_F(ChannelFixture, ZeroCopyDeliveryMakesNoDeepCopies)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.buffering = ChannelConfig::Buffering::ZeroCopy;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    const Payload message = encodeData(Bytes(4096, 1));
    auto &registry = obs::MetricsRegistry::instance();
    const auto channelCopiesBefore = registry.counterValue(
        "channel.payload_copies", {{"buffering", "zero-copy"}});
    const auto deepCopiesBefore = payloadPoolStats().deepCopies;

    for (int i = 0; i < 16; ++i)
        channel.value()->write(message);
    sim_.runToCompletion();

    ASSERT_EQ(echo.dataReceived.size(), 16u);
    // The whole send -> DMA -> dispatch pipeline moved references,
    // never bytes.
    EXPECT_EQ(registry.counterValue("channel.payload_copies",
                                    {{"buffering", "zero-copy"}}),
              channelCopiesBefore);
    EXPECT_EQ(payloadPoolStats().deepCopies, deepCopiesBefore);
}

TEST_F(ChannelFixture, CopyingModeChargesTheCopyCounter)
{
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.buffering = ChannelConfig::Buffering::Copying;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    auto &registry = obs::MetricsRegistry::instance();
    auto copies = [&registry]() {
        return registry.counterValue("channel.payload_copies",
                                    {{"buffering", "copying"}});
    };

    // Host -> device: one staged copy into the ring slot; the device
    // then reads the descriptor directly.
    const auto before = copies();
    channel.value()->write(encodeData(Bytes(1024, 1)));
    sim_.runToCompletion();
    EXPECT_EQ(copies(), before + 1);

    // Device -> host: one copy out of the ring into the user buffer
    // on the receiving host (the message waits in the poll queue).
    channel.value()->writeFrom(1, encodeData(Bytes(1024, 2)));
    sim_.runToCompletion();
    EXPECT_EQ(copies(), before + 2);
}

// -------------------------------------------------- Batched writes

TEST_F(ChannelFixture, LocalBatchedWriteMatchesUnbatchedDeliveries)
{
    // writeBatch must be observably identical to a loop of write()
    // under the sim engine: same delivery order, same payloads, same
    // virtual timestamps. Run both against twin channels and compare
    // the serialized records byte for byte.
    auto runTrial = [&](bool batched) {
        EchoOffcode echo;
        place(echo, hostSite_);
        ChannelConfig config;
        config.name = batched ? "batch.local.b" : "batch.local.u";
        config.targetDevice = hostSite_.name();
        auto channel = executive_->createChannel(config, hostSite_);
        EXPECT_TRUE(channel.ok());
        EXPECT_TRUE(channel.value()->connectOffcode(echo).ok());

        std::vector<Payload> messages;
        for (int i = 0; i < 16; ++i)
            messages.push_back(
                encodeData(Bytes(64, static_cast<std::uint8_t>(i))));
        const auto start = sim_.now();
        if (batched) {
            EXPECT_TRUE(
                channel.value()->writeBatch(std::move(messages)).ok());
        } else {
            for (auto &message : messages)
                EXPECT_TRUE(channel.value()->write(message).ok());
        }
        sim_.runToCompletion();

        std::ostringstream record;
        record << "dt=" << (sim_.now() - start) << ';';
        // The echo stores the decoded body; record size + first byte.
        for (const Payload &message : echo.dataReceived)
            record << message.size() << ':' << int(message.data()[0])
                   << ';';
        record << "sent=" << channel.value()->stats().messagesSent
               << ";delivered="
               << channel.value()->stats().messagesDelivered;
        return record.str();
    };

    const std::string unbatched = runTrial(false);
    const std::string batched = runTrial(true);
    EXPECT_EQ(batched, unbatched);
}

TEST_F(ChannelFixture, BatchedWriteStopsAtOversizeMessage)
{
    EchoOffcode echo;
    place(echo, hostSite_);
    ChannelConfig config;
    config.maxMessageBytes = 128;
    config.targetDevice = hostSite_.name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    std::vector<Payload> messages;
    messages.push_back(encodeData(Bytes(32, 1)));
    messages.push_back(encodeData(Bytes(32, 2)));
    messages.push_back(encodeData(Bytes(512, 3))); // too large
    messages.push_back(encodeData(Bytes(32, 4)));  // not sent

    Status written = channel.value()->writeBatch(std::move(messages));
    EXPECT_FALSE(written);
    EXPECT_EQ(written.code(), ErrorCode::MessageTooLarge);
    sim_.runToCompletion();
    // The valid prefix was still delivered, in order.
    ASSERT_EQ(echo.dataReceived.size(), 2u);
    EXPECT_EQ(echo.dataReceived[0], Bytes(32, 1));
    EXPECT_EQ(echo.dataReceived[1], Bytes(32, 2));
}

TEST_F(ChannelFixture, RingBatchSharesOneDmaChainAndInterrupt)
{
    // A host->device batch of 8 travels as one descriptor chain: one
    // bus crossing, one DMA transfer, and every message delivered.
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.ringDepth = 16;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    ASSERT_TRUE(channel.ok());
    channel.value()->connectOffcode(echo);

    const auto busBefore = machine_.bus().stats().transactions;
    std::vector<Payload> messages;
    for (int i = 0; i < 8; ++i)
        messages.push_back(
            encodeData(Bytes(256, static_cast<std::uint8_t>(i))));
    ASSERT_TRUE(channel.value()->writeBatch(std::move(messages)).ok());
    sim_.runToCompletion();

    ASSERT_EQ(echo.dataReceived.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(echo.dataReceived[i],
                  Bytes(256, static_cast<std::uint8_t>(i)));
    EXPECT_EQ(machine_.bus().stats().transactions - busBefore, 1u);
}

TEST_F(ChannelFixture, RingBatchBeyondDepthBacklogsAndDrainsInOrder)
{
    // Batch of 32 against a 4-deep ring: 4 ride the first chain, the
    // rest wait in one backlog entry and drain in order, splitting
    // as descriptors recycle.
    EchoOffcode echo;
    place(echo, *deviceSite_);

    ChannelConfig config;
    config.reliable = true;
    config.ringDepth = 4;
    config.targetDevice = deviceSite_->name();
    auto channel = executive_->createChannel(config, hostSite_);
    channel.value()->connectOffcode(echo);

    std::vector<Payload> messages;
    for (int i = 0; i < 32; ++i)
        messages.push_back(
            encodeData(Bytes(64, static_cast<std::uint8_t>(i))));
    ASSERT_TRUE(channel.value()->writeBatch(std::move(messages)).ok());
    sim_.runToCompletion();

    EXPECT_EQ(channel.value()->stats().messagesDropped, 0u);
    ASSERT_EQ(echo.dataReceived.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(echo.dataReceived[i],
                  Bytes(64, static_cast<std::uint8_t>(i)))
            << "backlog drain reordered at " << i;
}

TEST_F(ChannelFixture, PollBatchDrainsQueuedMessagesInOrder)
{
    ChannelConfig config;
    config.targetDevice = hostSite_.name();
    auto channel = executive_->createChannel(config, hostSite_);
    EchoOffcode echo;
    place(echo, hostSite_);
    channel.value()->connectOffcode(echo);

    // Endpoint 0 has no handler: deliveries queue for polling.
    for (int i = 0; i < 6; ++i)
        channel.value()->writeFrom(
            1, encodeData(Bytes{static_cast<std::uint8_t>(i)}));
    sim_.runToCompletion();

    std::vector<Payload> out;
    EXPECT_EQ(channel.value()->pollBatch(0, out, 4), 4u);
    EXPECT_EQ(channel.value()->pollBatch(0, out, 4), 2u);
    ASSERT_EQ(out.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(decodeData(out[i]).value()[0], i);
    EXPECT_EQ(channel.value()->pollBatch(0, out, 4), 0u);
}

} // namespace
} // namespace hydra::core
