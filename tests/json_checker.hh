/**
 * @file
 * Minimal JSON well-formedness checker (recursive descent), shared by
 * the test suites. The tests have no external JSON dependency, so
 * exported documents are parsed with this to prove they are
 * syntactically valid JSON — which is exactly what Perfetto or any
 * downstream tool requires. (src/common/json.hh is the richer parser
 * the tools use; this stays independent so it can vet that one too.)
 */

#ifndef HYDRA_TESTS_JSON_CHECKER_HH
#define HYDRA_TESTS_JSON_CHECKER_HH

#include <cctype>
#include <cstddef>
#include <string>

namespace hydra::testutil {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_; // skip the escaped character
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing '"'
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::string expect(word);
        if (text_.compare(pos_, expect.size(), expect) != 0)
            return false;
        pos_ += expect.size();
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace hydra::testutil

#endif // HYDRA_TESTS_JSON_CHECKER_HH
