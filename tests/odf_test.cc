/**
 * @file
 * Unit tests for the XML parser and the Offcode Description File
 * model (paper Section 3.3, Fig. 4).
 */

#include <gtest/gtest.h>

#include "odf/odf.hh"
#include "odf/xml.hh"

namespace hydra::odf {
namespace {

// ---------------------------------------------------------------- Xml

TEST(XmlTest, ParsesElementTree)
{
    auto doc = parseXml("<a><b x=\"1\"/><c>text</c></a>");
    ASSERT_TRUE(doc.ok());
    const XmlNode &root = *doc.value();
    EXPECT_EQ(root.name, "a");
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0]->name, "b");
    EXPECT_EQ(root.children[0]->attr("x"), "1");
    EXPECT_EQ(root.childText("c"), "text");
}

TEST(XmlTest, SingleAndDoubleQuotedAttributes)
{
    auto doc = parseXml("<e a=\"x y\" b='z'/>");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value()->attr("a"), "x y");
    EXPECT_EQ(doc.value()->attr("b"), "z");
}

TEST(XmlTest, UnquotedAttributesPaperStyle)
{
    // The paper's Fig. 4 uses <reference type=Pull pri=0>.
    auto doc = parseXml("<reference type=Pull pri=0></reference>");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value()->attr("type"), "Pull");
    EXPECT_EQ(doc.value()->attr("pri"), "0");
}

TEST(XmlTest, CommentsAndPrologSkipped)
{
    auto doc = parseXml("<?xml version=\"1.0\"?>\n"
                        "<!-- header -->\n"
                        "<root><!-- inner --><x/></root>\n"
                        "<!-- trailer -->");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value()->children.size(), 1u);
}

TEST(XmlTest, CdataPreserved)
{
    auto doc = parseXml("<r><![CDATA[a<b&c]]></r>");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value()->text, "a<b&c");
}

TEST(XmlTest, EntitiesDecoded)
{
    auto doc = parseXml("<r a=\"&lt;&amp;&gt;\">x&quot;y&apos;z</r>");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value()->attr("a"), "<&>");
    EXPECT_EQ(doc.value()->text, "x\"y'z");
}

TEST(XmlTest, MismatchedTagFailsWithLine)
{
    auto doc = parseXml("<a>\n<b>\n</a>\n");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.error().code, ErrorCode::ParseError);
    EXPECT_NE(doc.error().message.find("line 3"), std::string::npos);
}

TEST(XmlTest, UnterminatedElementFails)
{
    EXPECT_FALSE(parseXml("<a><b></b>").ok());
}

TEST(XmlTest, TrailingGarbageFails)
{
    EXPECT_FALSE(parseXml("<a/>junk").ok());
}

TEST(XmlTest, ChildrenNamedFindsAll)
{
    auto doc = parseXml("<r><i>1</i><j/><i>2</i></r>");
    ASSERT_TRUE(doc.ok());
    const auto items = doc.value()->childrenNamed("i");
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(std::string(items[1]->text), "2");
}

// ---------------------------------------------------------------- Odf

const char *kSocketOdf = R"(<offcode>
  <package>
    <bindname>hydra.net.utils.Socket</bindname>
    <GUID>7070714</GUID>
    <interface name="ISocket">
      <include>/offcodes/socket.wsdl</include>
      <method name="Send"/>
      <method name="Receive"/>
    </interface>
  </package>
  <sw-env>
    <import>
      <file>/offcodes/checksum.odf</file>
      <bindname>hydra.net.utils.Checksum</bindname>
      <reference type="Pull" pri="0">
        <GUID>6060843</GUID>
      </reference>
    </import>
    <requires memory="65536">
      <capability name="mac-ethernet"/>
    </requires>
  </sw-env>
  <targets>
    <device-class id="0x0001">
      <name>Network Device</name>
      <bus>pci</bus>
      <mac>ethernet</mac>
      <vendor>3COM</vendor>
    </device-class>
    <host-fallback/>
  </targets>
  <price bus="0.25"/>
</offcode>)";

TEST(OdfTest, ParsesPaperStyleManifest)
{
    auto doc = OdfDocument::parse(kSocketOdf);
    ASSERT_TRUE(doc.ok()) << doc.error().describe();
    const OdfDocument &odf = doc.value();

    EXPECT_EQ(odf.bindname, "hydra.net.utils.Socket");
    EXPECT_EQ(odf.guid.value(), 7070714u);

    ASSERT_EQ(odf.interfaces.size(), 1u);
    EXPECT_EQ(odf.interfaces[0].name, "ISocket");
    EXPECT_EQ(odf.interfaces[0].includePath, "/offcodes/socket.wsdl");
    ASSERT_EQ(odf.interfaces[0].methods.size(), 2u);
    EXPECT_EQ(odf.interfaces[0].methods[0], "Send");

    ASSERT_EQ(odf.imports.size(), 1u);
    EXPECT_EQ(odf.imports[0].bindname, "hydra.net.utils.Checksum");
    EXPECT_EQ(odf.imports[0].constraint, ConstraintType::Pull);
    EXPECT_EQ(odf.imports[0].guid.value(), 6060843u);

    EXPECT_EQ(odf.requiredMemoryBytes, 65536u);
    ASSERT_EQ(odf.requiredCapabilities.size(), 1u);
    EXPECT_EQ(odf.requiredCapabilities[0], "mac-ethernet");

    ASSERT_EQ(odf.targets.size(), 1u);
    EXPECT_EQ(odf.targets[0].id, 1u);
    EXPECT_EQ(odf.targets[0].vendor, "3COM");
    EXPECT_TRUE(odf.hostFallback);
    EXPECT_DOUBLE_EQ(odf.busPrice, 0.25);
}

TEST(OdfTest, GuidDefaultsToNameHash)
{
    auto doc = OdfDocument::parse(
        "<offcode><package><bindname>x.y</bindname></package>"
        "<targets><host-fallback/></targets></offcode>");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().guid, Guid::fromName("x.y"));
}

TEST(OdfTest, AllConstraintTypesParse)
{
    for (const char *name : {"Link", "Pull", "Gang", "AsymmetricGang"}) {
        auto parsed = constraintFromName(name);
        ASSERT_TRUE(parsed.ok()) << name;
        EXPECT_EQ(constraintName(parsed.value()), name);
    }
    EXPECT_FALSE(constraintFromName("Bogus").ok());
}

TEST(OdfTest, ConstraintNamesCaseInsensitive)
{
    EXPECT_EQ(constraintFromName("pull").value(), ConstraintType::Pull);
    EXPECT_EQ(constraintFromName("GANG").value(), ConstraintType::Gang);
}

TEST(OdfTest, MissingPackageFails)
{
    auto doc = OdfDocument::parse("<offcode></offcode>");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.error().code, ErrorCode::ManifestInvalid);
}

TEST(OdfTest, WrongRootFails)
{
    EXPECT_FALSE(OdfDocument::parse("<component/>").ok());
}

TEST(OdfTest, NoTargetsNoFallbackFails)
{
    auto doc = OdfDocument::parse(
        "<offcode><package><bindname>x</bindname></package></offcode>");
    EXPECT_FALSE(doc.ok());
}

TEST(OdfTest, ImportWithoutBindnameFails)
{
    auto doc = OdfDocument::parse(
        "<offcode><package><bindname>x</bindname></package>"
        "<sw-env><import><file>f.odf</file></import></sw-env>"
        "<targets><host-fallback/></targets></offcode>");
    EXPECT_FALSE(doc.ok());
}

TEST(OdfTest, ImportGuidDefaultsToBindnameHash)
{
    auto doc = OdfDocument::parse(
        "<offcode><package><bindname>x</bindname></package>"
        "<sw-env><import><bindname>peer.y</bindname></import></sw-env>"
        "<targets><host-fallback/></targets></offcode>");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().imports[0].guid, Guid::fromName("peer.y"));
    EXPECT_EQ(doc.value().imports[0].constraint, ConstraintType::Link);
}

TEST(OdfTest, RoundTripThroughToXml)
{
    auto original = OdfDocument::parse(kSocketOdf);
    ASSERT_TRUE(original.ok());
    auto reparsed = OdfDocument::parse(original.value().toXml());
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().describe();

    EXPECT_EQ(reparsed.value().bindname, original.value().bindname);
    EXPECT_EQ(reparsed.value().guid, original.value().guid);
    EXPECT_EQ(reparsed.value().imports.size(),
              original.value().imports.size());
    EXPECT_EQ(reparsed.value().imports[0].constraint,
              original.value().imports[0].constraint);
    EXPECT_EQ(reparsed.value().targets.size(),
              original.value().targets.size());
    EXPECT_EQ(reparsed.value().targets[0].vendor,
              original.value().targets[0].vendor);
    EXPECT_DOUBLE_EQ(reparsed.value().busPrice,
                     original.value().busPrice);
    EXPECT_EQ(reparsed.value().requiredMemoryBytes,
              original.value().requiredMemoryBytes);
}

TEST(OdfTest, LoadFileMissingFails)
{
    auto doc = OdfDocument::loadFile("/nonexistent/path.odf");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.error().code, ErrorCode::NotFound);
}

TEST(OdfTest, BadPriorityFails)
{
    auto doc = OdfDocument::parse(
        "<offcode><package><bindname>x</bindname></package>"
        "<sw-env><import><bindname>p</bindname>"
        "<reference type=\"Pull\" pri=\"abc\"/></import></sw-env>"
        "<targets><host-fallback/></targets></offcode>");
    EXPECT_FALSE(doc.ok());
}

} // namespace
} // namespace hydra::odf
