/**
 * @file
 * Behavioural tests of the cost models that drive the paper's
 * results: wakeup-distribution statistics of the OS model, network
 * contention serialization, bus estimation, and device-timer versus
 * host-timer precision — the quantitative heart of Table 2.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/offcode.hh"
#include "core/providers.hh"
#include "core/proxy.hh"
#include "dev/nic.hh"
#include "hw/machine.hh"
#include "net/network.hh"

#include "exec/sim_executor.hh"

namespace hydra {
namespace {

TEST(OsModelTest, WakeupDistributionMatchesConfiguredNoise)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    hw::OsKernel &os = machine.os();

    SampleSet lateness; // beyond the deterministic tick expiry
    for (int i = 0; i < 5000; ++i) {
        const sim::SimTime wake = os.wakeAfter(sim::milliseconds(5));
        lateness.add(sim::toMilliseconds(wake) - 6.0);
    }
    // Half-normal noise plus occasional +1 tick preemption.
    EXPECT_GE(lateness.min(), 0.0);
    EXPECT_LT(lateness.median(), 0.5);
    // Preemption probability ~7 %: p90 below one tick, p99 above.
    EXPECT_LT(lateness.percentile(90), 1.0);
    EXPECT_GT(lateness.percentile(99), 1.0);
}

TEST(OsModelTest, QuietConfigIsDeterministic)
{
    exec::SimExecutor sim;
    hw::MachineConfig config;
    config.os.wakeupNoiseSigma = 0;
    config.os.preemptionProbability = 0.0;
    hw::Machine machine(sim, config);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(machine.os().wakeAfter(sim::milliseconds(5)),
                  sim::milliseconds(6));
}

TEST(OsModelTest, DeviceTimerBeatsHostTimerPrecision)
{
    // The crux of Table 2: device hardware timers are orders of
    // magnitude more precise than tick-quantized host sleeps.
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    net::Network net(sim, net::NetworkConfig{});
    dev::ProgrammableNic nic(sim, machine.bus(), net, net.addNode("n"));

    SampleSet hostError, deviceError;
    for (int i = 0; i < 2000; ++i) {
        hostError.add(sim::toMicroseconds(
            machine.os().wakeAfter(sim::milliseconds(5)) -
            sim::milliseconds(5)));
    }
    int remaining = 2000;
    std::function<void()> arm = [&]() {
        if (remaining-- == 0)
            return;
        const sim::SimTime asked = sim.now() + sim::milliseconds(5);
        nic.timerAfter(sim::milliseconds(5), [&, asked]() {
            deviceError.add(sim::toMicroseconds(sim.now() - asked));
            arm();
        });
    };
    arm();
    sim.runToCompletion();

    EXPECT_GT(hostError.mean(), 900.0);  // ~1 tick or more, in us
    EXPECT_LT(deviceError.mean(), 100.0); // tens of us
    EXPECT_GT(hostError.stddev(), 5.0 * deviceError.stddev());
    EXPECT_GT(hostError.mean(), 10.0 * deviceError.mean());
}

TEST(NetworkModelTest, ReceiverDownlinkSerializesConcurrentSenders)
{
    exec::SimExecutor sim;
    net::NetworkConfig config;
    config.linkLatency = 0;
    config.switchLatency = 0;
    net::Network net(sim, config);
    const net::NodeId a = net.addNode("a");
    const net::NodeId b = net.addNode("b");
    const net::NodeId sink = net.addNode("sink");

    std::vector<sim::SimTime> deliveries;
    net.bind(sink, 1, [&](const net::Packet &) {
        deliveries.push_back(sim.now());
    });

    auto makePacket = [&](net::NodeId src) {
        net::Packet p;
        p.src = src;
        p.dst = sink;
        p.dstPort = 1;
        p.payload = Bytes(1458, 0); // 1500 B on the wire
        return p;
    };
    // Both senders transmit simultaneously; the sink's downlink can
    // only carry one frame at a time.
    net.send(makePacket(a));
    net.send(makePacket(b));
    sim.runToCompletion();

    ASSERT_EQ(deliveries.size(), 2u);
    const sim::SimTime wire = sim::transferTime(1500, 1.0);
    EXPECT_GE(deliveries[1] - deliveries[0], wire);
}

TEST(BusModelTest, EstimateMatchesActualCompletion)
{
    exec::SimExecutor sim;
    hw::Bus bus(sim, "pci", 8.0, 700);
    const sim::SimTime estimate = bus.estimateCompletion(4096);
    sim::SimTime actual = 0;
    bus.transfer(4096, [&]() { actual = sim.now(); });
    sim.runToCompletion();
    EXPECT_EQ(actual, estimate);
}

TEST(BusModelTest, ContentionDelaysLaterEstimates)
{
    exec::SimExecutor sim;
    hw::Bus bus(sim, "pci", 8.0, 0);
    bus.transfer(8192, []() {});
    // A second transfer queues behind the first.
    const sim::SimTime estimate = bus.estimateCompletion(8192);
    EXPECT_GE(estimate, 2 * sim::transferTime(8192, 8.0));
}

TEST(StatsRenderTest, HistogramRenderShowsBars)
{
    Histogram h(0.0, 10.0, 5);
    for (int i = 0; i < 50; ++i)
        h.add(1.0);
    h.add(9.0);
    const std::string out = h.render(10);
    EXPECT_NE(out.find("##########"), std::string::npos); // peak bin
    EXPECT_NE(out.find("\n"), std::string::npos);
    EXPECT_EQ(h.totalCount(), 51u);
}

TEST(ProxyTest, OneWayInvocationLeavesNoPending)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    net::Network net(sim, net::NetworkConfig{});
    dev::ProgrammableNic nic(sim, machine.bus(), net, net.addNode("n"));
    core::HostSite host(machine);
    core::DeviceSite device(machine, nic);

    class Counter : public core::Offcode
    {
      public:
        Counter() : Offcode("counter")
        {
            registerMethod("Tick", [this](const Bytes &) -> Result<Bytes> {
                ++ticks;
                return Bytes{};
            });
        }
        int ticks = 0;
    };

    Counter counter;
    core::OffcodeContext ctx;
    ctx.site = &device;
    counter.doInitialize(ctx);
    counter.doStart();

    core::DmaRingChannelProvider provider(sim, false);
    auto channel = provider.create(core::ChannelConfig{}, host);
    channel->connectOffcode(counter);

    core::Proxy proxy(*channel, counter.guid(), counter.guid());
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(proxy.invokeOneWay("Tick", Bytes{}).ok());
    sim.runToCompletion();

    EXPECT_EQ(counter.ticks, 5);
    EXPECT_EQ(proxy.pendingCalls(), 0u);
    // One-way calls produce no Return traffic back to endpoint 0.
    EXPECT_FALSE(channel->poll(0).ok());
}

TEST(DeviceEdgeTest, FreeLocalClampsAtZero)
{
    exec::SimExecutor sim;
    hw::Machine machine(sim, hw::MachineConfig{});
    dev::DeviceConfig config;
    config.localMemoryBytes = 1024;
    dev::Device device(sim, machine.bus(), config,
                       dev::DeviceClassSpec{});
    device.allocateLocal(100);
    device.freeLocal(5000); // over-free must not underflow
    EXPECT_EQ(device.localMemoryUsed(), 0u);
    EXPECT_EQ(device.localMemoryFree(), 1024u);
}

TEST(NetworkEdgeTest, NodeNamesAndUnknownNode)
{
    exec::SimExecutor sim;
    net::Network net(sim, net::NetworkConfig{});
    const net::NodeId a = net.addNode("alpha");
    EXPECT_EQ(net.nodeName(a), "alpha");
    EXPECT_EQ(net.nodeName(999), "<unknown>");
    EXPECT_EQ(net.nodeCount(), 1u);
}

TEST(StatsEdgeTest, AddAllAndClear)
{
    SampleSet s;
    s.addAll({1.0, 2.0, 3.0});
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(StatsEdgeTest, CdfOfConstantSeries)
{
    SampleSet s;
    for (int i = 0; i < 10; ++i)
        s.add(5.0);
    const auto cdf = empiricalCdf(s);
    ASSERT_EQ(cdf.size(), 1u);
    EXPECT_DOUBLE_EQ(cdf[0].value, 5.0);
    EXPECT_DOUBLE_EQ(cdf[0].probability, 1.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

} // namespace
} // namespace hydra
