/**
 * @file
 * Tests for the executor abstraction: the SPSC handoff ring, the
 * deterministic SimExecutor backend, the ThreadedExecutor's timer /
 * post / cancellation semantics, thread-safe Payload pool
 * conservation under concurrent traffic, and cross-thread span
 * stitching. Everything labeled `threaded` in ctest also runs under
 * ThreadSanitizer via `scripts/check.sh --tsan`.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/payload.hh"
#include "exec/executor.hh"
#include "obs/metrics.hh"
#include "exec/sim_executor.hh"
#include "exec/spsc_queue.hh"
#include "exec/threaded_executor.hh"
#include "obs/span.hh"
#include "obs/trace.hh"
#include "tivo/harness.hh"

namespace hydra::exec {
namespace {

// ---------------------------------------------------------------- SPSC

TEST(SpscQueueTest, RoundsCapacityToPowerOfTwo)
{
    SpscQueue<int> q(100);
    EXPECT_EQ(q.capacity(), 128u);
    SpscQueue<int> q2(256);
    EXPECT_EQ(q2.capacity(), 256u);
}

TEST(SpscQueueTest, FifoSingleThread)
{
    SpscQueue<int> q(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.push(int(i)));
    int overflow = 99;
    EXPECT_FALSE(q.push(std::move(overflow))); // full
    for (int i = 0; i < 8; ++i) {
        int out = -1;
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    int empty;
    EXPECT_FALSE(q.pop(empty));
}

TEST(SpscQueueTest, TwoThreadsTransferEverythingInOrder)
{
    constexpr int kItems = 100000;
    SpscQueue<int> q(64);
    std::vector<int> received;
    received.reserve(kItems);

    std::thread consumer([&]() {
        int out;
        while (received.size() < kItems) {
            if (q.pop(out))
                received.push_back(out);
            else
                std::this_thread::yield();
        }
    });
    for (int i = 0; i < kItems; ++i) {
        while (!q.push(int(i)))
            std::this_thread::yield();
    }
    consumer.join();

    ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
    for (int i = 0; i < kItems; ++i)
        ASSERT_EQ(received[i], i) << "reordered at " << i;
}

// -------------------------------------------------------- SimExecutor

TEST(SimExecutorTest, MirrorsSimulatorSemantics)
{
    SimExecutor engine;
    EXPECT_STREQ(engine.backendName(), "sim");

    std::vector<int> order;
    engine.schedule(sim::microseconds(2), [&]() { order.push_back(2); });
    engine.schedule(sim::microseconds(1), [&]() { order.push_back(1); });
    const TaskId doomed =
        engine.schedule(sim::microseconds(3), [&]() { order.push_back(3); });
    engine.cancel(doomed);

    engine.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(engine.now(), sim::microseconds(2));
}

TEST(SimExecutorTest, PostRunsInFifoOrderWithoutAdvancingTime)
{
    SimExecutor engine;
    const SiteId site = engine.addSite("dev0");
    EXPECT_EQ(engine.siteCount(), 1u);

    engine.runUntil(sim::microseconds(5));
    std::vector<int> order;
    engine.post(site, [&]() { order.push_back(1); });
    engine.post(kMainSite, [&]() { order.push_back(2); });
    engine.post(site, [&]() { order.push_back(3); });
    EXPECT_TRUE(order.empty()); // nothing runs until the loop turns

    engine.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(engine.now(), sim::microseconds(5)); // time did not move
}

TEST(SimExecutorTest, DrainLeavesFutureTimersPending)
{
    SimExecutor engine;
    bool fired = false;
    engine.schedule(sim::milliseconds(1), [&]() { fired = true; });
    engine.drain();
    EXPECT_FALSE(fired);
    EXPECT_EQ(engine.pendingEvents(), 1u);
}

// ---------------------------------------------------- ThreadedExecutor

TEST(ThreadedExecutorTest, TimersFireInOrderOnTheCoordinator)
{
    ThreadedExecutor engine;
    EXPECT_STREQ(engine.backendName(), "threaded");

    const std::thread::id self = std::this_thread::get_id();
    std::vector<int> order;
    engine.schedule(sim::microseconds(3), [&]() {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(3);
    });
    engine.schedule(sim::microseconds(1), [&]() { order.push_back(1); });
    engine.scheduleAt(sim::microseconds(2), [&]() { order.push_back(2); });

    engine.runUntil(sim::microseconds(10));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(engine.now(), sim::microseconds(10));
    EXPECT_EQ(engine.eventsDispatched(), 3u);
}

TEST(ThreadedExecutorTest, EqualTimestampsKeepFifoOrder)
{
    ThreadedExecutor engine;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        engine.schedule(sim::microseconds(1),
                        [&order, i]() { order.push_back(i); });
    engine.runToCompletion();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadedExecutorTest, CancelAndPeriodicMatchSimSemantics)
{
    ThreadedExecutor engine;
    bool fired = false;
    const TaskId doomed =
        engine.schedule(sim::microseconds(5), [&]() { fired = true; });
    engine.cancel(doomed);

    int ticks = 0;
    const TaskId series = engine.schedulePeriodic(
        sim::microseconds(2), [&]() { return ++ticks < 3; });
    engine.runUntil(sim::microseconds(20));
    EXPECT_FALSE(fired);
    EXPECT_EQ(ticks, 3);

    int more = 0;
    const TaskId forever = engine.schedulePeriodic(
        sim::microseconds(2), [&]() {
            ++more;
            return true;
        });
    engine.runUntil(sim::microseconds(26));
    engine.cancel(forever);
    engine.runUntil(sim::microseconds(40));
    EXPECT_EQ(more, 3);
    (void)series;
}

TEST(ThreadedExecutorTest, PostRunsOnTheSiteWorkerThread)
{
    ThreadedExecutor engine;
    const SiteId site = engine.addSite("nic");
    ASSERT_NE(site, kMainSite);
    EXPECT_EQ(engine.siteCount(), 1u);

    const std::thread::id coordinator = std::this_thread::get_id();
    std::atomic<bool> ran{false};
    std::thread::id workerThread;
    engine.post(site, [&]() {
        workerThread = std::this_thread::get_id();
        ran.store(true, std::memory_order_release);
    });
    engine.drain(); // barrier: waits for the worker
    ASSERT_TRUE(ran.load(std::memory_order_acquire));
    EXPECT_NE(workerThread, coordinator);
}

TEST(ThreadedExecutorTest, RunUntilIsABarrierForPostedWork)
{
    ThreadedExecutor engine;
    const SiteId a = engine.addSite("a");
    const SiteId b = engine.addSite("b");

    constexpr int kRounds = 2000;
    std::atomic<int> completed{0};
    engine.schedule(sim::microseconds(1), [&]() {
        for (int i = 0; i < kRounds; ++i) {
            // Site-to-site chain: coordinator -> a -> b.
            engine.post(a, [&, i]() {
                engine.post(b, [&]() {
                    completed.fetch_add(1, std::memory_order_relaxed);
                });
            });
        }
    });
    engine.runUntil(sim::milliseconds(1));
    EXPECT_EQ(completed.load(), kRounds);
    EXPECT_GE(engine.postsExecuted(), static_cast<std::uint64_t>(
                                          2 * kRounds));
}

TEST(ThreadedExecutorTest, WorkersCanScheduleTimersBack)
{
    ThreadedExecutor engine;
    const SiteId site = engine.addSite("disk");

    std::atomic<bool> timerFired{false};
    engine.post(site, [&]() {
        // Device completion re-enters virtual time from the worker.
        engine.schedule(sim::microseconds(3),
                        [&]() { timerFired.store(true); });
    });
    engine.runUntil(sim::milliseconds(1));
    EXPECT_TRUE(timerFired.load());
}

TEST(ThreadedExecutorTest, PostOrderPreservedPerProducerSitePair)
{
    ThreadedExecutor engine;
    const SiteId site = engine.addSite("sink");

    constexpr int kItems = 5000; // > ring capacity: exercises overflow
    std::vector<int> seen;
    seen.reserve(kItems);
    for (int i = 0; i < kItems; ++i)
        engine.post(site, [&seen, i]() { seen.push_back(i); });
    engine.drain();

    ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
    for (int i = 0; i < kItems; ++i)
        ASSERT_EQ(seen[i], i) << "posting order broken at " << i;
}

// ----------------------------------------------- Payload conservation

TEST(PayloadThreadSafetyTest, PoolCountersConservedUnderContention)
{
    payloadPoolTrim();
    const PayloadPoolStats before = payloadPoolStats();

    constexpr int kThreads = 4;
    constexpr int kRounds = 5000;
    std::atomic<std::uint64_t> bytesSeen{0};

    // Each thread builds payloads, shares them (copy + slice), hands
    // some to a neighbor via the executor, and drops them — the exact
    // traffic shape of the threaded data path.
    ThreadedExecutor engine;
    std::vector<SiteId> sites;
    for (int t = 0; t < kThreads; ++t)
        sites.push_back(engine.addSite("stress-" + std::to_string(t)));

    for (int t = 0; t < kThreads; ++t) {
        engine.post(sites[t], [&, t]() {
            for (int i = 0; i < kRounds; ++i) {
                PayloadBuilder builder;
                builder.buffer().assign(64 + (i % 7), std::uint8_t(i));
                Payload message = builder.seal();
                Payload copy = message;          // refcount traffic
                Payload body = message.slice(8, 32);
                bytesSeen.fetch_add(body.size(),
                                    std::memory_order_relaxed);
                // Cross-site handoff: the neighbor drops the last ref,
                // so release/recycle happens on a different thread
                // than allocation.
                engine.post(sites[(t + 1) % kThreads],
                            [kept = std::move(copy)]() {
                                (void)kept.size();
                            });
            }
        });
    }
    engine.drain();

    const PayloadPoolStats after = payloadPoolStats();
    const std::uint64_t acquired =
        (after.allocations - before.allocations) +
        (after.poolHits - before.poolHits);
    const std::uint64_t expected =
        static_cast<std::uint64_t>(kThreads) * kRounds;
    // Conservation: every node acquired was exactly one builder seal,
    // and every one was either recycled into the freelist or freed
    // (over-capacity / pool-full) — never double-freed, never leaked
    // into the freelist twice.
    EXPECT_EQ(acquired, expected);
    EXPECT_GE(after.recycles, before.recycles);
    EXPECT_LE(after.recycles - before.recycles, acquired);
    EXPECT_LE(after.freeNodes, 256u); // kMaxFreeNodes bound held
    EXPECT_EQ(bytesSeen.load(), expected * 32u);
}

// -------------------------------------------- factory + full pipeline

TEST(ExecutorFactoryTest, MakesBothEnginesAndParsesNames)
{
    ExecutorKind kind = ExecutorKind::Sim;
    EXPECT_TRUE(parseExecutorKind("threaded", kind));
    EXPECT_EQ(kind, ExecutorKind::Threaded);
    EXPECT_TRUE(parseExecutorKind("sim", kind));
    EXPECT_EQ(kind, ExecutorKind::Sim);
    EXPECT_FALSE(parseExecutorKind("warp", kind));

    EXPECT_STREQ(makeExecutor(ExecutorKind::Sim)->backendName(), "sim");
    EXPECT_STREQ(makeExecutor(ExecutorKind::Threaded)->backendName(),
                 "threaded");
    EXPECT_STREQ(executorKindName(ExecutorKind::Sim), "sim");
    EXPECT_STREQ(executorKindName(ExecutorKind::Threaded), "threaded");
}

TEST(ThreadedIntegrationTest, FullTivoScenarioRunsOnThreadedEngine)
{
    // The complete offloaded/offloaded TiVo pipeline — deployment over
    // OOB channels, NIC -> GPU streaming, smart-disk recording — on
    // the threaded engine. Device sites get real worker threads; the
    // run must deploy and deliver just like the deterministic engine.
    tivo::TestbedConfig config;
    config.server = tivo::ServerKind::Offloaded;
    config.client = tivo::ClientKind::Offloaded;
    config.executor = ExecutorKind::Threaded;
    config.duration = sim::seconds(20);
    config.warmup = sim::seconds(2);
    config.sampleInterval = sim::seconds(2);
    config.movieFrames = 96;

    tivo::Testbed testbed(config);
    EXPECT_STREQ(testbed.executor().backendName(), "threaded");
    EXPECT_GE(testbed.executor().siteCount(), 4u); // NICs, disk, GPU

    const tivo::ScenarioResult result = testbed.run();
    ASSERT_TRUE(result.deploymentOk);
    EXPECT_GT(result.packetsReceived, 100u);
    EXPECT_GT(result.framesDisplayed, 100u);
    EXPECT_EQ(result.networkDrops, 0u);
}

// ------------------------------------------------------ span stitching

#if HYDRA_OBS_TRACING
TEST(ThreadedSpanTest, SpansFromDifferentThreadsStitchIntoOneTrace)
{
    auto &tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.enable();
    obs::resetSpanIds();

    ThreadedExecutor engine;
    const SiteId site = engine.addSite("span-site");

    obs::SpanContext rootCtx, childCtx;
    {
        obs::Span root;
        root.open("test", "main", "root", "test", engine.now());
        rootCtx = root.context();

        std::atomic<bool> done{false};
        engine.post(site, [&, parent = root.context()]() {
            // The send stamps the context; the receiving site
            // restores it — spans on the worker nest under the root.
            obs::ContextScope scope(parent);
            obs::Span child;
            child.open("test", "worker", "child", "test", engine.now());
            childCtx = child.context();
            child.end(engine.now());
            done.store(true, std::memory_order_release);
        });
        engine.drain();
        ASSERT_TRUE(done.load(std::memory_order_acquire));
        root.end(engine.now());
    }

    EXPECT_EQ(childCtx.traceId, rootCtx.traceId);
    EXPECT_EQ(childCtx.parentId, rootCtx.spanId);
    EXPECT_NE(childCtx.spanId, rootCtx.spanId);
    tracer.disable();
}

TEST(ThreadedSpanTest, ConcurrentSpanIdsNeverCollide)
{
    auto &tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.enable();
    obs::resetSpanIds();

    constexpr int kThreads = 4;
    constexpr int kSpans = 2000;
    std::vector<std::vector<std::uint64_t>> ids(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            ids[t].reserve(kSpans);
            for (int i = 0; i < kSpans; ++i) {
                obs::Span span;
                span.open("test", "t" + std::to_string(t), "s", "test",
                          0);
                ids[t].push_back(span.context().spanId);
                span.end(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    std::set<std::uint64_t> unique;
    for (const auto &perThread : ids)
        unique.insert(perThread.begin(), perThread.end());
    EXPECT_EQ(unique.size(),
              static_cast<std::size_t>(kThreads) * kSpans);
    tracer.disable();
}
#endif // HYDRA_OBS_TRACING

// ------------------------------------------------------ Batch queue

TEST(SpscQueueBatchTest, BatchTransferPreservesFifoOrder)
{
    SpscQueue<int> q(64);
    std::vector<int> in;
    for (int i = 0; i < 48; ++i)
        in.push_back(i);
    EXPECT_EQ(q.pushBatch(std::span<int>(in)), 48u);

    int out[64];
    // Asking for more than is queued drains what exists (partial).
    EXPECT_EQ(q.popBatch(out, 64), 48u);
    for (int i = 0; i < 48; ++i)
        ASSERT_EQ(out[i], i) << "batch reordered at " << i;
    EXPECT_EQ(q.popBatch(out, 64), 0u); // empty
}

TEST(SpscQueueBatchTest, PartialBatchWhenNearlyFull)
{
    SpscQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(q.push(int(i)));

    std::vector<int> extra{6, 7, 8, 9};
    // Only two slots remain: the batch is accepted as a prefix.
    EXPECT_EQ(q.pushBatch(std::span<int>(extra)), 2u);
    EXPECT_EQ(q.sizeHint(), 8u);
    EXPECT_EQ(q.pushBatch(std::span<int>(extra)), 0u); // full

    int out[8];
    ASSERT_EQ(q.popBatch(out, 8), 8u);
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(out[i], i);
}

TEST(SpscQueueBatchTest, BatchesWrapAroundTheRing)
{
    SpscQueue<int> q(8);
    int next = 0, expected = 0;
    int out[8];
    // 5-in / 5-out rounds on an 8-slot ring force the indices to
    // wrap past the capacity many times over.
    for (int round = 0; round < 20; ++round) {
        std::vector<int> batch;
        for (int i = 0; i < 5; ++i)
            batch.push_back(next++);
        ASSERT_EQ(q.pushBatch(std::span<int>(batch)), 5u);
        ASSERT_EQ(q.popBatch(out, 5), 5u);
        for (int i = 0; i < 5; ++i)
            ASSERT_EQ(out[i], expected++) << "wraparound broke FIFO";
    }
    EXPECT_EQ(q.sizeHint(), 0u);
}

TEST(SpscQueueBatchTest, FourThreadsBatchTransferInOrder)
{
    // Two independent rings, each with a dedicated producer and
    // consumer thread (SPSC discipline), all four running at once.
    // Batch sizes vary per round to cover partial accept/drain and
    // wraparound interleavings; TSAN covers this via the `threaded`
    // ctest label.
    constexpr int kItems = 50000;
    SpscQueue<int> rings[2] = {SpscQueue<int>(64), SpscQueue<int>(64)};
    std::vector<int> received[2];

    std::vector<std::thread> threads;
    for (int r = 0; r < 2; ++r) {
        received[r].reserve(kItems);
        threads.emplace_back([&, r]() { // consumer
            int out[32];
            while (received[r].size() < kItems) {
                const std::size_t max = 1 + received[r].size() % 32;
                const std::size_t got = rings[r].popBatch(out, max);
                if (got == 0) {
                    std::this_thread::yield();
                    continue;
                }
                received[r].insert(received[r].end(), out, out + got);
            }
        });
        threads.emplace_back([&, r]() { // producer
            int next = 0;
            std::vector<int> batch;
            while (next < kItems) {
                batch.clear();
                const int want =
                    std::min(kItems - next, 1 + next % 17);
                for (int i = 0; i < want; ++i)
                    batch.push_back(next + i);
                std::span<int> rest(batch);
                while (!rest.empty()) {
                    const std::size_t pushed =
                        rings[r].pushBatch(rest);
                    rest = rest.subspan(pushed);
                    if (!rest.empty())
                        std::this_thread::yield();
                }
                next += want;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int r = 0; r < 2; ++r) {
        ASSERT_EQ(received[r].size(),
                  static_cast<std::size_t>(kItems));
        for (int i = 0; i < kItems; ++i)
            ASSERT_EQ(received[r][i], i)
                << "ring " << r << " reordered at " << i;
    }
}

// -------------------------------------------------- Batch executors

TEST(SimExecutorTest, PostBatchRunsInFifoOrder)
{
    SimExecutor engine;
    const SiteId site = engine.addSite("dev0");

    std::vector<int> order;
    std::vector<Executor::Callback> fns;
    for (int i = 0; i < 8; ++i)
        fns.emplace_back([&order, i]() { order.push_back(i); });
    engine.postBatch(site, fns);
    engine.post(site, [&order]() { order.push_back(8); });
    EXPECT_TRUE(order.empty());

    engine.drain();
    ASSERT_EQ(order.size(), 9u);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SimExecutorTest, BatchedReplayIsByteIdenticalToUnbatched)
{
    // The determinism contract: postBatch on the sim engine must
    // produce exactly the record an equivalent loop of post() calls
    // produces — same execution order, same virtual timestamps, same
    // event accounting. Serialize the observable run and compare the
    // strings byte for byte.
    auto runTrial = [](bool batched) {
        SimExecutor engine;
        const SiteId site = engine.addSite("dev0");
        std::ostringstream record;

        auto task = [&record, &engine](int i) {
            return Executor::Callback([&record, &engine, i]() {
                record << i << '@' << engine.now() << ';';
            });
        };
        // A timer interleaves with the posted work so the record
        // covers both queues, not just the post path.
        engine.schedule(sim::microseconds(1), [&record, &engine]() {
            record << "t@" << engine.now() << ';';
        });
        if (batched) {
            std::vector<Executor::Callback> fns;
            for (int i = 0; i < 16; ++i)
                fns.push_back(task(i));
            engine.postBatch(site, fns);
        } else {
            for (int i = 0; i < 16; ++i)
                engine.post(site, task(i));
        }
        engine.runToCompletion();
        record << "now=" << engine.now()
               << ";pending=" << engine.pendingEvents();
        return record.str();
    };

    const std::string unbatched = runTrial(false);
    const std::string batchedA = runTrial(true);
    const std::string batchedB = runTrial(true);
    EXPECT_EQ(batchedA, unbatched);
    EXPECT_EQ(batchedB, batchedA); // replay is stable too
}

TEST(ThreadedExecutorTest, PostBatchPreservedOrderThroughOverflow)
{
    ThreadedExecutor::Config config;
    config.ringCapacity = 64; // small ring: batches must spill
    ThreadedExecutor engine(config);
    const SiteId site = engine.addSite("batch-sink");

    constexpr int kItems = 5000;
    std::vector<int> seen;
    seen.reserve(kItems);
    std::vector<Executor::Callback> fns;
    for (int base = 0; base < kItems; base += 128) {
        fns.clear();
        const int count = std::min(128, kItems - base);
        for (int i = 0; i < count; ++i)
            fns.emplace_back([&seen, value = base + i]() {
                seen.push_back(value);
            });
        engine.postBatch(site, fns);
    }
    engine.drain();

    ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
    for (int i = 0; i < kItems; ++i)
        ASSERT_EQ(seen[i], i) << "batch posting order broken at " << i;

    // The drain path records every batch it executes.
    EXPECT_GT(
        obs::histogram("exec.batch_size", {{"site", "batch-sink"}})
            .count(),
        0u);
}

TEST(ThreadedExecutorTest, PostBatchFromManyProducersLosesNothing)
{
    ThreadedExecutor::Config config;
    config.ringCapacity = 128;
    ThreadedExecutor engine(config);
    const SiteId site = engine.addSite("mp-batch-sink");

    constexpr int kThreads = 4;
    constexpr int kPerThread = 4000;
    std::atomic<int> executed{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&]() {
            std::vector<Executor::Callback> fns;
            for (int base = 0; base < kPerThread; base += 64) {
                fns.clear();
                const int count = std::min(64, kPerThread - base);
                for (int i = 0; i < count; ++i)
                    fns.emplace_back([&executed]() {
                        executed.fetch_add(
                            1, std::memory_order_relaxed);
                    });
                engine.postBatch(site, fns);
            }
        });
    }
    for (auto &producer : producers)
        producer.join();
    engine.drain();
    EXPECT_EQ(executed.load(), kThreads * kPerThread);
}

} // namespace
} // namespace hydra::exec
