/**
 * @file
 * Fleet tests (DESIGN.md §14): consistent-hash placement, cross-host
 * channels over the wire fabric (FIFO + exactly-one-copy), the
 * sharded executive's id-indexed registry, and the open-loop load
 * generator on both execution engines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/payload.hh"
#include "core/channel.hh"
#include "core/executive.hh"
#include "exec/executor.hh"
#include "exec/sim_executor.hh"
#include "fleet/fleet.hh"
#include "fleet/loadgen.hh"
#include "fleet/placement.hh"
#include "obs/metrics.hh"

namespace hydra::fleet {
namespace {

// ---------------------------------------------------------- placement

TEST(PlacementTest, HashIsStableAcrossCalls)
{
    EXPECT_EQ(placementHash("stream/0"), placementHash("stream/0"));
    EXPECT_NE(placementHash("stream/0"), placementHash("stream/1"));
}

TEST(PlacementTest, EmptyRingReturnsEmpty)
{
    PlacementRing ring;
    EXPECT_EQ(ring.hostFor("anything"), "");
    EXPECT_EQ(ring.hostCount(), 0u);
}

TEST(PlacementTest, DeterministicAndBalanced)
{
    const std::vector<std::string> hosts{"host0", "host1", "host2",
                                         "host3"};
    PlacementRing a;
    PlacementRing b;
    a.rebuild(hosts);
    b.rebuild(hosts);
    EXPECT_EQ(a.hostCount(), 4u);
    EXPECT_EQ(a.pointCount(), 4u * 64u);

    std::map<std::string, std::size_t> load;
    for (int i = 0; i < 10000; ++i) {
        const std::string key = "stream/" + std::to_string(i);
        const std::string owner = a.hostFor(key);
        EXPECT_EQ(owner, b.hostFor(key));
        ++load[owner];
    }
    ASSERT_EQ(load.size(), 4u);
    std::size_t lo = 10000;
    std::size_t hi = 0;
    for (const auto &[host, n] : load) {
        lo = std::min(lo, n);
        hi = std::max(hi, n);
    }
    // 64 vnodes/host keeps uniform keys within ~1.4x of each other;
    // allow 2x so the bound is about the mechanism, not the seed.
    EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 2.0);
}

TEST(PlacementTest, MembershipChangeMovesAboutOneNth)
{
    std::vector<std::string> hosts{"host0", "host1", "host2", "host3"};
    PlacementRing before;
    before.rebuild(hosts);
    hosts.push_back("host4");
    PlacementRing after;
    after.rebuild(hosts);

    int moved = 0;
    const int keys = 10000;
    for (int i = 0; i < keys; ++i) {
        const std::string key = "stream/" + std::to_string(i);
        if (before.hostFor(key) != after.hostFor(key))
            ++moved;
    }
    // Consistent hashing: adding 1 of 5 hosts should move ~1/5 of the
    // keys, not reshuffle everything. Allow generous slack.
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, keys * 35 / 100);
}

TEST(PlacementTest, HostRemovalMovesOnlyTheDepartedShare)
{
    std::vector<std::string> hosts{"host0", "host1", "host2", "host3",
                                   "host4"};
    PlacementRing before;
    before.rebuild(hosts);
    hosts.erase(hosts.begin() + 2); // drop host2
    PlacementRing after;
    after.rebuild(hosts);

    int moved = 0;
    int orphansMoved = 0;
    int orphans = 0;
    const int keys = 10000;
    for (int i = 0; i < keys; ++i) {
        const std::string key = "stream/" + std::to_string(i);
        const std::string was = before.hostFor(key);
        const std::string now = after.hostFor(key);
        if (was == "host2") {
            ++orphans;
            // Every key on the departed host must land somewhere else.
            EXPECT_NE(now, "host2") << key;
            if (was != now)
                ++orphansMoved;
        }
        if (was != now)
            ++moved;
    }
    // Removing 1 of 5 hosts relocates exactly the departed host's
    // keys (~1/5) and nothing else: keys homed on survivors stay put.
    EXPECT_GT(orphans, 0);
    EXPECT_EQ(moved, orphansMoved);
    EXPECT_LT(moved, keys * 35 / 100);
}

// ----------------------------------------------------------- topology

TEST(FleetTopologyTest, ResolvesSitesAcrossHostsButNotAliases)
{
    exec::SimExecutor exec;
    FleetConfig config;
    config.hosts = 4;
    Fleet fleet(exec, config);

    ASSERT_EQ(fleet.hostCount(), 4u);
    EXPECT_NE(fleet.findSite("host2.host"), nullptr);
    EXPECT_NE(fleet.findSite("host3-nic"), nullptr);
    // The generic alias stays host-local: resolving it fleet-wide
    // would silently pin every channel to host0.
    EXPECT_EQ(fleet.findSite("host"), nullptr);
    EXPECT_EQ(fleet.findSite("no-such-site"), nullptr);

    EXPECT_EQ(fleet.hostByName("host1"), &fleet.host(1));
    EXPECT_EQ(fleet.hostByName("hostX"), nullptr);
    EXPECT_EQ(fleet.hostOf(fleet.host(2).machine()), &fleet.host(2));

    // homeOf follows the ring.
    Host &home = fleet.homeOf("stream/7");
    EXPECT_EQ(fleet.placement().hostFor("stream/7"), home.name());
}

// ------------------------------------------------- cross-host channel

struct Received
{
    std::vector<std::uint64_t> seqs;
};

core::Channel *
makeCrossHostChannel(Fleet &fleet, Host &from, Host &to,
                     Received &sink, std::size_t maxBytes = 512)
{
    core::ChannelConfig config;
    config.name = "test.fleet";
    config.targetDevice = to.nic().name();
    auto created = fleet.host(from.index())
                       .executive()
                       .createChannel(config, from.runtime().hostSite(),
                                      maxBytes);
    EXPECT_TRUE(created.ok()) << created.error().describe();
    if (!created.ok())
        return nullptr;
    core::Channel *channel = created.value();

    core::ExecutionSite *site =
        to.runtime().siteByName(config.targetDevice);
    EXPECT_NE(site, nullptr);
    auto endpoint = channel->connectSite(*site);
    EXPECT_TRUE(endpoint.ok());
    channel->installHandler(
        endpoint.value(), [&sink](const Payload &message, std::size_t) {
            ByteReader reader(message.data(), message.size());
            auto seq = reader.readU64();
            ASSERT_TRUE(seq.ok());
            sink.seqs.push_back(seq.value());
        });
    return channel;
}

Payload
stampedMessage(std::uint64_t seq, std::size_t bytes)
{
    PayloadBuilder builder;
    ByteWriter writer(builder.buffer());
    writer.writeU64(seq);
    if (builder.buffer().size() < bytes)
        builder.buffer().resize(bytes, 0);
    return builder.seal();
}

TEST(CrossHostChannelTest, FifoWithExactlyOneWireCopyPerMessage)
{
    exec::SimExecutor exec;
    FleetConfig config;
    config.hosts = 4;
    Fleet fleet(exec, config);

    auto &registry = obs::MetricsRegistry::instance();
    const std::uint64_t wireBase = registry.counterValue(
        "channel.payload_copies", {{"buffering", "wire"}});
    const std::uint64_t gapBase = registry.counterValue("fleet.seq_gaps");

    Received sink;
    core::Channel *channel =
        makeCrossHostChannel(fleet, fleet.host(0), fleet.host(2), sink);
    ASSERT_NE(channel, nullptr);

    constexpr std::uint64_t kMessages = 50;
    for (std::uint64_t i = 0; i < kMessages; ++i)
        ASSERT_TRUE(channel->write(stampedMessage(i, 128)).ok());
    exec.runUntil(exec.now() + sim::milliseconds(50));
    exec.drain();

    ASSERT_EQ(sink.seqs.size(), kMessages);
    for (std::uint64_t i = 0; i < kMessages; ++i)
        EXPECT_EQ(sink.seqs[i], i) << "out of order at " << i;

    // Exactly one buffered copy per message (header + body into the
    // wire frame); the receive side is a zero-copy slice.
    EXPECT_EQ(registry.counterValue("channel.payload_copies",
                                    {{"buffering", "wire"}}) -
                  wireBase,
              kMessages);
    EXPECT_EQ(registry.counterValue("fleet.seq_gaps") - gapBase, 0u);
    EXPECT_EQ(fleet.host(2).orphanFrames(), 0u);
    EXPECT_EQ(channel->stats().messagesSent, kMessages);
}

TEST(CrossHostChannelTest, IntraHostStreamsNeverTouchTheWire)
{
    exec::SimExecutor exec;
    FleetConfig config;
    config.hosts = 2;
    Fleet fleet(exec, config);

    auto &registry = obs::MetricsRegistry::instance();
    const std::uint64_t wireBase = registry.counterValue(
        "channel.payload_copies", {{"buffering", "wire"}});

    Received sink;
    core::Channel *channel =
        makeCrossHostChannel(fleet, fleet.host(0), fleet.host(0), sink);
    ASSERT_NE(channel, nullptr);

    constexpr std::uint64_t kMessages = 20;
    for (std::uint64_t i = 0; i < kMessages; ++i)
        ASSERT_TRUE(channel->write(stampedMessage(i, 128)).ok());
    exec.runUntil(exec.now() + sim::milliseconds(50));
    exec.drain();

    EXPECT_EQ(sink.seqs.size(), kMessages);
    EXPECT_EQ(registry.counterValue("channel.payload_copies",
                                    {{"buffering", "wire"}}) -
                  wireBase,
              0u)
        << "same-host channel crossed the wire";
}

TEST(CrossHostChannelTest, DestroyMidFlightOrphansFramesSafely)
{
    exec::SimExecutor exec;
    FleetConfig config;
    config.hosts = 2;
    Fleet fleet(exec, config);

    Received sink;
    core::Channel *channel =
        makeCrossHostChannel(fleet, fleet.host(0), fleet.host(1), sink);
    ASSERT_NE(channel, nullptr);
    const core::ChannelId id = channel->id();

    for (std::uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(channel->write(stampedMessage(i, 128)).ok());
    // Destroy while the frames are still in flight on the fabric: the
    // receiver's route table entry disappears, so the frames must be
    // counted as orphans, not delivered into freed memory.
    ASSERT_TRUE(fleet.host(0).executive().destroyChannelById(id).ok());
    exec.runUntil(exec.now() + sim::milliseconds(50));
    exec.drain();

    EXPECT_EQ(sink.seqs.size() + fleet.host(1).orphanFrames(), 10u);
}

// --------------------------------------------------- executive shards

TEST(ExecutiveShardTest, IdIndexedRegistryIsExact)
{
    exec::SimExecutor exec;
    FleetConfig config;
    config.hosts = 2;
    Fleet fleet(exec, config);
    core::ChannelExecutive &shard = fleet.host(0).executive();

    const std::size_t before = shard.activeChannels();

    // Failed create (unresolvable target) must not leak a slot.
    core::ChannelConfig bad;
    bad.name = "test.bad";
    bad.targetDevice = "no-such-device";
    auto failed = shard.createChannel(
        bad, fleet.host(0).runtime().hostSite(), 256);
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(shard.activeChannels(), before);

    Received sink;
    core::Channel *channel =
        makeCrossHostChannel(fleet, fleet.host(0), fleet.host(1), sink);
    ASSERT_NE(channel, nullptr);
    EXPECT_EQ(shard.activeChannels(), before + 1);
    EXPECT_EQ(shard.findChannel(channel->id()), channel);
    // Ids are process-wide: the other shard does not claim this one.
    EXPECT_EQ(fleet.host(1).executive().findChannel(channel->id()),
              nullptr);

    const core::ChannelId id = channel->id();
    ASSERT_TRUE(shard.destroyChannelById(id).ok());
    EXPECT_EQ(shard.activeChannels(), before);
    EXPECT_EQ(shard.findChannel(id), nullptr);
    EXPECT_FALSE(shard.destroyChannelById(id).ok());
}

// ------------------------------------------------------------ loadgen

TEST(LoadgenTest, SimOpenLoopDeliversAndCountsCopies)
{
    exec::SimExecutor exec;
    FleetConfig config;
    config.hosts = 4;
    Fleet fleet(exec, config);

    LoadgenConfig load;
    load.streams = 64;
    load.messageBytes = 128;
    load.offeredMsgsPerSec = 100000;
    load.duration = sim::milliseconds(20);
    auto report = runOpenLoop(fleet, load);

    EXPECT_EQ(report.hosts, 4u);
    EXPECT_EQ(report.remoteStreams + report.localStreams, 64u);
    EXPECT_GT(report.offered, 0u);
    EXPECT_EQ(report.writeFailures, 0u);
    // Open loop at a sustainable rate: (nearly) everything delivers.
    EXPECT_GT(report.delivered, report.offered * 9 / 10);
    EXPECT_EQ(report.latency.count, report.delivered);
    EXPECT_GT(report.latency.p50, 0.0);
    // Every cross-host message buffers exactly once at the sender,
    // and the zero-copy intra-host path performs no copies at all.
    EXPECT_GE(report.wireCopies, report.remoteStreams);
    EXPECT_EQ(report.zeroCopies, 0u);
    std::uint64_t perHostSum = 0;
    for (const auto &slice : report.perHost)
        perHostSum += slice.delivered;
    EXPECT_EQ(perHostSum, report.delivered);
}

TEST(LoadgenTest, ChurnKeepsTheFleetDelivering)
{
    exec::SimExecutor exec;
    FleetConfig config;
    config.hosts = 4;
    Fleet fleet(exec, config);

    LoadgenConfig load;
    load.streams = 32;
    load.messageBytes = 128;
    load.offeredMsgsPerSec = 50000;
    load.duration = sim::milliseconds(20);
    load.churnPerTick = 2;
    auto report = runOpenLoop(fleet, load);

    EXPECT_GT(report.churned, 0u);
    EXPECT_GT(report.delivered, 0u);
    EXPECT_EQ(report.writeFailures, 0u);
}

TEST(LoadgenTest, SimRunsAreDeterministic)
{
    const auto run = [] {
        exec::SimExecutor exec;
        FleetConfig config;
        config.hosts = 4;
        Fleet fleet(exec, config);
        LoadgenConfig load;
        load.streams = 48;
        load.messageBytes = 128;
        load.offeredMsgsPerSec = 80000;
        load.duration = sim::milliseconds(10);
        load.churnPerTick = 1;
        // The latency histogram is a process-global instrument;
        // zero it so both runs summarize identical populations.
        load.resetMetrics = true;
        return runOpenLoop(fleet, load);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.churned, b.churned);
    EXPECT_EQ(a.wireCopies, b.wireCopies);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
}

// --------------------------------------------------- threaded engine

TEST(FleetThreadedTest, CrossHostFifoOnThreadedExecutor)
{
    auto exec = exec::makeExecutor(exec::ExecutorKind::Threaded);
    FleetConfig config;
    config.hosts = 4;
    Fleet fleet(*exec, config);

    Received sink;
    core::Channel *channel =
        makeCrossHostChannel(fleet, fleet.host(1), fleet.host(3), sink);
    ASSERT_NE(channel, nullptr);

    constexpr std::uint64_t kMessages = 50;
    for (std::uint64_t i = 0; i < kMessages; ++i)
        ASSERT_TRUE(channel->write(stampedMessage(i, 128)).ok());
    exec->runUntil(exec->now() + sim::milliseconds(50));
    exec->drain();

    ASSERT_EQ(sink.seqs.size(), kMessages);
    for (std::uint64_t i = 0; i < kMessages; ++i)
        EXPECT_EQ(sink.seqs[i], i) << "out of order at " << i;
}

TEST(FleetThreadedTest, DriverStressWithChurn)
{
    auto exec = exec::makeExecutor(exec::ExecutorKind::Threaded);
    FleetConfig config;
    config.hosts = 4;
    Fleet fleet(*exec, config);

    LoadgenConfig load;
    load.streams = 48;
    load.messageBytes = 128;
    load.offeredMsgsPerSec = 50000;
    load.duration = sim::milliseconds(20);
    load.useDrivers = true; // per-host driver threads
    load.churnPerTick = 1;  // destroy/recreate under live traffic
    auto report = runOpenLoop(fleet, load);

    EXPECT_GT(report.delivered, 0u);
    EXPECT_GT(report.churned, 0u);
    EXPECT_EQ(report.writeFailures, 0u);
    // Driver mode forces cross-host placement.
    EXPECT_EQ(report.localStreams, 0u);
}

} // namespace
} // namespace hydra::fleet
