/**
 * @file
 * Unit tests for the network substrate: switched fabric, NFS-lite,
 * and the Foong-style TCP path cost model behind Fig. 1.
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "net/nfs.hh"
#include "net/tcp_model.hh"
#include "exec/sim_executor.hh"

namespace hydra::net {
namespace {

class NetworkTest : public ::testing::Test
{
  protected:
    NetworkTest() : net_(sim_, NetworkConfig{})
    {
        a_ = net_.addNode("a");
        b_ = net_.addNode("b");
    }

    Packet
    makePacket(NodeId src, NodeId dst, Port port, std::size_t bytes)
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.srcPort = 1000;
        p.dstPort = port;
        p.payload = Bytes(bytes, 0x5a);
        return p;
    }

    exec::SimExecutor sim_;
    Network net_;
    NodeId a_ = 0, b_ = 0;
};

TEST_F(NetworkTest, DeliversToBoundHandler)
{
    int received = 0;
    ASSERT_TRUE(net_.bind(b_, 80, [&](const Packet &p) {
        ++received;
        EXPECT_EQ(p.payload.size(), 100u);
        EXPECT_EQ(p.src, 0u);
    }));
    EXPECT_TRUE(net_.send(makePacket(a_, b_, 80, 100)));
    sim_.runToCompletion();
    EXPECT_EQ(received, 1);
    EXPECT_EQ(net_.stats().packetsDelivered, 1u);
}

TEST_F(NetworkTest, DeliveryTakesWireTime)
{
    sim::SimTime delivered = 0;
    net_.bind(b_, 80, [&](const Packet &) { delivered = sim_.now(); });
    net_.send(makePacket(a_, b_, 80, 1024));
    sim_.runToCompletion();
    // Two serializations (~8.5 us each at 1 Gbps) + latencies.
    EXPECT_GT(delivered, sim::microseconds(17));
    EXPECT_LT(delivered, sim::microseconds(60));
}

TEST_F(NetworkTest, UnboundPortCountsAsDrop)
{
    net_.send(makePacket(a_, b_, 9999, 10));
    sim_.runToCompletion();
    EXPECT_EQ(net_.stats().packetsDropped, 1u);
    EXPECT_EQ(net_.stats().packetsDelivered, 0u);
}

TEST_F(NetworkTest, BadAddressFailsFast)
{
    Packet p = makePacket(a_, 999, 80, 10);
    Status sent = net_.send(std::move(p));
    EXPECT_FALSE(sent);
    EXPECT_EQ(sent.code(), ErrorCode::NetworkUnreachable);
}

TEST_F(NetworkTest, OversizedPayloadRejected)
{
    Packet p = makePacket(a_, b_, 80, 128 * 1024);
    Status sent = net_.send(std::move(p));
    EXPECT_FALSE(sent);
    EXPECT_EQ(sent.code(), ErrorCode::MessageTooLarge);
}

TEST_F(NetworkTest, DoubleBindRejected)
{
    net_.bind(b_, 80, [](const Packet &) {});
    Status second = net_.bind(b_, 80, [](const Packet &) {});
    EXPECT_FALSE(second);
    EXPECT_EQ(second.code(), ErrorCode::AlreadyExists);
}

TEST_F(NetworkTest, UnbindThenRebindWorks)
{
    net_.bind(b_, 80, [](const Packet &) {});
    net_.unbind(b_, 80);
    EXPECT_TRUE(net_.bind(b_, 80, [](const Packet &) {}));
}

TEST_F(NetworkTest, InOrderPerSender)
{
    std::vector<std::uint64_t> seqs;
    net_.bind(b_, 80, [&](const Packet &p) { seqs.push_back(p.seq); });
    for (std::uint64_t i = 0; i < 20; ++i) {
        Packet p = makePacket(a_, b_, 80, 500);
        p.seq = i;
        net_.send(std::move(p));
    }
    sim_.runToCompletion();
    ASSERT_EQ(seqs.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(seqs[i], i);
}

TEST(NetworkDropTest, LossyFabricDropsStatistically)
{
    exec::SimExecutor sim;
    NetworkConfig config;
    config.dropProbability = 0.5;
    config.seed = 3;
    Network net(sim, config);
    const NodeId a = net.addNode("a");
    const NodeId b = net.addNode("b");
    int received = 0;
    net.bind(b, 80, [&](const Packet &) { ++received; });
    for (int i = 0; i < 1000; ++i) {
        Packet p;
        p.src = a;
        p.dst = b;
        p.dstPort = 80;
        p.payload = Bytes(10, 1);
        net.send(std::move(p));
    }
    sim.runToCompletion();
    EXPECT_GT(received, 400);
    EXPECT_LT(received, 600);
    EXPECT_EQ(net.stats().packetsDropped + received, 1000u);
}

// ---------------------------------------------------------------- NFS

class NfsTest : public ::testing::Test
{
  protected:
    NfsTest() : net_(sim_, NetworkConfig{})
    {
        serverNode_ = net_.addNode("nas");
        clientNode_ = net_.addNode("host");
        server_ = std::make_unique<NfsServer>(net_, serverNode_);
        client_ = std::make_unique<NfsClient>(net_, clientNode_,
                                              serverNode_);
    }

    exec::SimExecutor sim_;
    Network net_;
    NodeId serverNode_ = 0, clientNode_ = 0;
    std::unique_ptr<NfsServer> server_;
    std::unique_ptr<NfsClient> client_;
};

TEST_F(NfsTest, ReadReturnsFileContent)
{
    server_->putFile("movie", Bytes{10, 20, 30, 40, 50});
    Bytes got;
    client_->read("movie", 1, 3, [&](Result<Bytes> r) {
        ASSERT_TRUE(r.ok());
        got = r.value();
    });
    sim_.runToCompletion();
    EXPECT_EQ(got, (Bytes{20, 30, 40}));
    EXPECT_EQ(client_->outstanding(), 0u);
}

TEST_F(NfsTest, ReadPastEndIsShort)
{
    server_->putFile("f", Bytes{1, 2, 3});
    Bytes got{9}; // sentinel
    client_->read("f", 2, 100, [&](Result<Bytes> r) {
        ASSERT_TRUE(r.ok());
        got = r.value();
    });
    sim_.runToCompletion();
    EXPECT_EQ(got, (Bytes{3}));
}

TEST_F(NfsTest, MissingFileReportsError)
{
    bool failed = false;
    client_->read("nope", 0, 10, [&](Result<Bytes> r) {
        failed = !r.ok();
    });
    sim_.runToCompletion();
    EXPECT_TRUE(failed);
}

TEST_F(NfsTest, WriteCreatesAndExtends)
{
    bool ok = false;
    client_->write("new", 4, Bytes{7, 8}, [&](Status s) { ok = s.ok(); });
    sim_.runToCompletion();
    ASSERT_TRUE(ok);
    auto content = server_->fileContent("new");
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(content.value(), (Bytes{0, 0, 0, 0, 7, 8}));
}

TEST_F(NfsTest, WriteOverlaysExisting)
{
    server_->putFile("f", Bytes{1, 1, 1, 1});
    client_->write("f", 1, Bytes{9, 9}, [](Status) {});
    sim_.runToCompletion();
    EXPECT_EQ(server_->fileContent("f").value(), (Bytes{1, 9, 9, 1}));
}

TEST_F(NfsTest, GetSize)
{
    server_->putFile("f", Bytes(12345, 0));
    std::uint64_t size = 0;
    client_->getSize("f", [&](Result<std::uint64_t> r) {
        ASSERT_TRUE(r.ok());
        size = r.value();
    });
    sim_.runToCompletion();
    EXPECT_EQ(size, 12345u);
}

TEST_F(NfsTest, ConcurrentRequestsCorrelateByXid)
{
    server_->putFile("a", Bytes{1});
    server_->putFile("b", Bytes{2});
    Bytes gotA, gotB;
    client_->read("a", 0, 1, [&](Result<Bytes> r) { gotA = r.value(); });
    client_->read("b", 0, 1, [&](Result<Bytes> r) { gotB = r.value(); });
    EXPECT_EQ(client_->outstanding(), 2u);
    sim_.runToCompletion();
    EXPECT_EQ(gotA, (Bytes{1}));
    EXPECT_EQ(gotB, (Bytes{2}));
}

TEST_F(NfsTest, TwoClientsDistinctReplyPorts)
{
    NfsClient second(net_, clientNode_, serverNode_, 40000);
    server_->putFile("f", Bytes{5});
    int done = 0;
    client_->read("f", 0, 1, [&](Result<Bytes>) { ++done; });
    second.read("f", 0, 1, [&](Result<Bytes>) { ++done; });
    sim_.runToCompletion();
    EXPECT_EQ(done, 2);
}

// ---------------------------------------------------------------- Fig. 1 model

TEST(TcpModelTest, RatioDecreasesWithPacketSize)
{
    TcpPathModel model;
    const auto small = model.evaluate(TcpDirection::Transmit, 64);
    const auto medium = model.evaluate(TcpDirection::Transmit, 1460);
    const auto large = model.evaluate(TcpDirection::Transmit, 65536);
    EXPECT_GT(small.ghzPerGbps, medium.ghzPerGbps);
    EXPECT_GT(medium.ghzPerGbps, large.ghzPerGbps);
}

TEST(TcpModelTest, ReceiveCostsMoreThanTransmit)
{
    TcpPathModel model;
    for (std::size_t bytes : {64u, 512u, 1460u, 16384u, 65536u}) {
        const auto tx = model.evaluate(TcpDirection::Transmit, bytes);
        const auto rx = model.evaluate(TcpDirection::Receive, bytes);
        EXPECT_GT(rx.ghzPerGbps, tx.ghzPerGbps) << "at " << bytes;
    }
}

TEST(TcpModelTest, SmallPacketsAreCpuBound)
{
    TcpPathModel model;
    const auto point = model.evaluate(TcpDirection::Receive, 64);
    // The CPU saturates before the wire does.
    EXPECT_LT(point.throughputGbps, model.costs().lineRateGbps);
    EXPECT_DOUBLE_EQ(point.cpuUtilization, 1.0);
}

TEST(TcpModelTest, LargePacketsAreLineRateBound)
{
    TcpPathModel model;
    const auto point = model.evaluate(TcpDirection::Transmit, 65536);
    EXPECT_DOUBLE_EQ(point.throughputGbps, model.costs().lineRateGbps);
    EXPECT_LT(point.cpuUtilization, 1.0);
}

TEST(TcpModelTest, GhzPerGbpsIdentityHolds)
{
    // ratio == util * clock / throughput by definition.
    TcpPathModel model;
    const auto p = model.evaluate(TcpDirection::Receive, 1024);
    EXPECT_NEAR(p.ghzPerGbps,
                p.cpuUtilization * model.costs().hostClockGhz /
                    p.throughputGbps,
                1e-12);
}

TEST(TcpModelTest, RuleOfThumbNearOneGhzPerGbpsAtMtu)
{
    // Foong et al.'s headline: roughly 1 GHz of CPU per 1 Gbps of
    // TCP at common packet sizes.
    TcpPathModel model;
    const auto p = model.evaluate(TcpDirection::Receive, 1460);
    EXPECT_GT(p.ghzPerGbps, 0.5);
    EXPECT_LT(p.ghzPerGbps, 2.0);
}

TEST(TcpModelTest, SweepCoversAllSizes)
{
    TcpPathModel model;
    const std::vector<std::size_t> sizes{64, 128, 256, 512, 1024};
    const auto sweep = model.sweep(TcpDirection::Transmit, sizes);
    ASSERT_EQ(sweep.size(), sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i)
        EXPECT_EQ(sweep[i].packetBytes, sizes[i]);
}

} // namespace
} // namespace hydra::net
