/**
 * @file
 * Tests for the MpegLite codec: GOP structure, lossless round trips,
 * stream framing, and the chunk-oriented assembler the Streamer and
 * Decoder components rely on.
 */

#include <gtest/gtest.h>

#include "tivo/mpeg.hh"

namespace hydra::tivo {
namespace {

MpegConfig
smallConfig()
{
    MpegConfig config;
    config.width = 64;
    config.height = 48;
    config.gopLength = 9;
    config.pSpacing = 3;
    return config;
}

TEST(MpegTest, GopPattern)
{
    MpegEncoder encoder(smallConfig());
    EXPECT_EQ(encoder.frameTypeFor(0), FrameType::I);
    EXPECT_EQ(encoder.frameTypeFor(3), FrameType::P);
    EXPECT_EQ(encoder.frameTypeFor(6), FrameType::P);
    EXPECT_EQ(encoder.frameTypeFor(1), FrameType::B);
    EXPECT_EQ(encoder.frameTypeFor(2), FrameType::B);
    EXPECT_EQ(encoder.frameTypeFor(9), FrameType::I);
}

TEST(MpegTest, SyntheticVideoDeterministic)
{
    SyntheticVideo a(smallConfig(), 5), b(smallConfig(), 5);
    EXPECT_EQ(a.frame(10).pixels, b.frame(10).pixels);
    EXPECT_NE(a.frame(10).pixels, a.frame(11).pixels);
}

TEST(MpegTest, EncodeDecodeLossless)
{
    const MpegConfig config = smallConfig();
    SyntheticVideo source(config, 42);
    MpegEncoder encoder(config);
    MpegDecoder decoder;

    for (std::uint32_t i = 0; i < 30; ++i) {
        const RawFrame original = source.frame(i);
        auto encoded = encoder.encode(original);
        ASSERT_TRUE(encoded.ok());
        auto decoded = decoder.decode(encoded.value());
        ASSERT_TRUE(decoded.ok()) << "frame " << i;
        EXPECT_EQ(decoded.value().pixels, original.pixels)
            << "frame " << i;
        EXPECT_EQ(decoded.value().sequence, i);
    }
}

TEST(MpegTest, DeltaFramesSmallerThanIFrames)
{
    const MpegConfig config = smallConfig();
    SyntheticVideo source(config, 42);
    MpegEncoder encoder(config);

    const auto iFrame = encoder.encode(source.frame(0));
    const auto bFrame = encoder.encode(source.frame(1));
    ASSERT_TRUE(iFrame.ok());
    ASSERT_TRUE(bFrame.ok());
    EXPECT_EQ(iFrame.value().type, FrameType::I);
    EXPECT_NE(bFrame.value().type, FrameType::I);
    EXPECT_LT(bFrame.value().payload.size(),
              iFrame.value().payload.size());
}

TEST(MpegTest, EncoderRejectsWrongSize)
{
    MpegEncoder encoder(smallConfig());
    RawFrame bad;
    bad.width = 64;
    bad.height = 48;
    bad.pixels.resize(10);
    EXPECT_FALSE(encoder.encode(bad).ok());
}

TEST(MpegTest, DecoderRejectsDeltaWithoutReference)
{
    const MpegConfig config = smallConfig();
    SyntheticVideo source(config, 42);
    MpegEncoder encoder(config);
    encoder.encode(source.frame(0)); // advance GOP state
    auto delta = encoder.encode(source.frame(1));
    ASSERT_TRUE(delta.ok());

    MpegDecoder fresh;
    EXPECT_FALSE(fresh.decode(delta.value()).ok());
}

TEST(MpegTest, FirstFrameAlwaysIntraEvenMidGop)
{
    // A freshly reset encoder must emit I regardless of GOP position.
    MpegEncoder encoder(smallConfig());
    SyntheticVideo source(smallConfig(), 1);
    RawFrame frame = source.frame(4); // GOP position 4 would be B
    auto encoded = encoder.encode(frame);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(encoded.value().type, FrameType::I);
}

TEST(MpegTest, AssemblerReassemblesFromOddChunks)
{
    const MpegConfig config = smallConfig();
    const Bytes stream = encodeMovie(config, 20, 42);

    StreamAssembler assembler;
    MpegDecoder decoder;
    SyntheticVideo source(config, 42);

    std::size_t decoded = 0;
    std::size_t pos = 0;
    std::size_t chunkSize = 1; // deliberately awkward chunk sizes
    while (pos < stream.size()) {
        const std::size_t n = std::min(chunkSize, stream.size() - pos);
        assembler.feed(Bytes(stream.begin() +
                                 static_cast<std::ptrdiff_t>(pos),
                             stream.begin() +
                                 static_cast<std::ptrdiff_t>(pos + n)));
        pos += n;
        chunkSize = chunkSize % 700 + 13;

        while (true) {
            auto frame = assembler.nextFrame();
            if (!frame.ok())
                break;
            auto raw = decoder.decode(frame.value());
            ASSERT_TRUE(raw.ok());
            EXPECT_EQ(raw.value().pixels,
                      source.frame(raw.value().sequence).pixels);
            ++decoded;
        }
    }
    EXPECT_EQ(decoded, 20u);
}

TEST(MpegTest, AssemblerResyncsMidStream)
{
    const MpegConfig config = smallConfig();
    const Bytes stream = encodeMovie(config, 10, 42);

    // Join mid-stream: drop the first 100 bytes (mid-frame).
    StreamAssembler assembler;
    assembler.feed(Bytes(stream.begin() + 100, stream.end()));

    MpegDecoder decoder;
    std::size_t decoded = 0;
    std::size_t parseFailures = 0;
    while (true) {
        auto frame = assembler.nextFrame();
        if (!frame.ok())
            break;
        auto raw = decoder.decode(frame.value());
        if (raw.ok())
            ++decoded;
        else {
            ++parseFailures; // pre-I-frame deltas fail, as expected
            decoder.reset();
        }
    }
    EXPECT_GT(decoded, 0u);
}

TEST(MpegTest, MovieBitRateIsRealistic)
{
    // The paper streams 200 kB/s; at ~20-25 fps that needs frames
    // that average a handful of kilobytes.
    MpegConfig config; // default 160x120
    const Bytes movie = encodeMovie(config, 50, 42);
    const double avg = static_cast<double>(movie.size()) / 50.0;
    EXPECT_GT(avg, 2000.0);
    EXPECT_LT(avg, 20000.0);
}

TEST(MpegTest, SerializedFrameHasParseableHeader)
{
    const MpegConfig config = smallConfig();
    SyntheticVideo source(config, 1);
    MpegEncoder encoder(config);
    auto encoded = encoder.encode(source.frame(0));
    const Bytes wire = serializeFrame(encoded.value());

    StreamAssembler assembler;
    assembler.feed(wire);
    auto frame = assembler.nextFrame();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame.value().width, 64u);
    EXPECT_EQ(frame.value().height, 48u);
    EXPECT_EQ(frame.value().payload, encoded.value().payload);
    EXPECT_EQ(assembler.bufferedBytes(), 0u);
}

} // namespace
} // namespace hydra::tivo
